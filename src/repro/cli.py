"""Command-line interface.

Usage (also available as ``python -m repro``)::

    repro-temporal generate wiki-talk --scale 0.2 --out wiki.npz
    repro-temporal info wiki.npz
    repro-temporal run wiki.npz --delta-days 90 --sw 86400 --top 5
    repro-temporal compare wiki.npz --delta-days 90 --sw 86400
    repro-temporal sweep wiki.npz --delta-days 90 --sw 86400 --workers 48
    repro-temporal kernel wiki.npz --delta-days 90 --sw 86400 --name maxcore
    repro-temporal report --output-dir benchmarks/output --out REPORT.md
    repro-temporal run wiki.npz --delta-days 90 --sw 86400 --store wiki.rankstore
    repro-temporal inspect wiki.rankstore
    repro-temporal query wiki.rankstore top-k --window 3 -k 10
    repro-temporal serve wiki.rankstore --port 8321
    repro-temporal serve wiki.rankstore --shards 3 --replicas 2
    repro-temporal bench-traffic http://127.0.0.1:8321 --requests 2000
    repro-temporal lint src benchmarks --format json
    repro-temporal backends

* **generate** — write a synthetic dataset profile to ``.npz``/``.tsv``.
* **info** — event counts, span, temporal shape classification.
* **run** — windowed PageRank under ``--model offline|streaming|
  postmortem`` (default postmortem); per-window top vertices.  ``--save``
  archives the run (``.npz``); ``--store`` streams a servable rank store
  to disk; ``--executor`` fans the work out where the model's dependence
  structure permits.
* **compare** — measured wall-clock of offline / streaming / postmortem.
* **sweep** — simulated multicore sweep of level x granularity (the
  Section 6.3.6 tuning aid).
* **kernel** — a non-PageRank analysis (components / maxcore / triangles /
  katz) per window.
* **report** — collate benchmark outputs into one Markdown report.
* **inspect** — describe a saved run archive or rank store.
* **query** — answer top-k / rank / trajectory / movers / window-at
  queries against a rank store.
* **serve** — JSON-over-HTTP query server with request micro-batching;
  ``--shards N`` federates the store across worker processes (window
  ranges in shared memory) behind an asyncio frontend with admission
  control.
* **bench-traffic** — zipfian load against a running server; reports
  per-op p50/p99 latency, throughput, and shed/degraded counts.
* **lint** — the project-specific static-analysis suite (exit 1 on
  findings; see ``docs/linting.md``).
* **backends** — the registered kernel backends, whether each is
  available in this environment, and the cost-model constants the
  ``--backend auto`` decision is priced with.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro-temporal",
        description="Postmortem PageRank on temporal graphs (ICPP'22 "
        "reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="generate a synthetic dataset")
    p_gen.add_argument("profile", help="profile name (see `list`)")
    p_gen.add_argument("--scale", type=float, default=1.0)
    p_gen.add_argument("--seed-offset", type=int, default=0)
    p_gen.add_argument("--out", required=True,
                       help="output path (.npz, .tsv or .tcsr)")
    p_gen.add_argument("--format", default="auto",
                       choices=["auto", "npz", "tsv", "tcsr"],
                       help="output format; auto infers from --out suffix. "
                       "tcsr builds the memory-mapped artifact straight to "
                       "disk in bounded-memory chunks (use for *-xl "
                       "profiles)")
    p_gen.add_argument("--chunk-events", type=int, default=None,
                       help="events generated/sorted per chunk on the tcsr "
                       "path (bounds peak memory; default 1,000,000)")

    sub.add_parser("list", help="list dataset profiles")

    p_info = sub.add_parser("info", help="describe an event file")
    p_info.add_argument("events", help="event file (.npz or .tsv)")

    def add_window_args(p):
        p.add_argument("--delta-days", type=float, required=True,
                       help="window size in days")
        p.add_argument("--sw", type=int, required=True,
                       help="sliding offset in seconds")
        p.add_argument("--max-windows", type=int, default=None)
        p.add_argument("--alpha", type=float, default=0.15)
        p.add_argument("--tolerance", type=float, default=1e-8)

    p_run = sub.add_parser(
        "run", help="windowed PageRank under any execution model"
    )
    p_run.add_argument("events", nargs="?", default=None,
                       help="event file (.npz, .tsv or .tcsr); or use "
                       "--graph")
    p_run.add_argument("--graph", default=None, metavar="PATH",
                       help="run from a .tcsr artifact: events and "
                       "adjacency stay memory-mapped, multi-window graphs "
                       "materialize lazily per task")
    add_window_args(p_run)
    p_run.add_argument("--model", default="postmortem",
                       choices=["offline", "streaming", "postmortem"],
                       help="execution model (paper Section 3.3); every "
                       "model honours --store/--save, executors where its "
                       "dependence structure permits")
    p_run.add_argument("--program", default="pagerank",
                       choices=["pagerank", "katz", "kcore"],
                       help="vertex program to run on the engine "
                       "(default: pagerank; every model supports every "
                       "program)")
    p_run.add_argument("--multiwindows", type=int, default=6)
    p_run.add_argument("--kernel", choices=["spmv", "spmm"], default="spmm")
    p_run.add_argument("--vector-length", type=int, default=16)
    p_run.add_argument("--partition", default="uniform",
                       choices=["uniform", "minimax", "greedy"])
    p_run.add_argument("--executor", default="serial",
                       choices=["serial", "thread", "process", "shared"],
                       help="how window work is fanned out: in this "
                       "process, by a thread pool, by a pickling process "
                       "pool, or by a shared-memory process pool "
                       "(zero-copy publication; works with --store). "
                       "postmortem parallelizes over multi-window graphs, "
                       "offline over windows; streaming is serial-only")
    p_run.add_argument("--executor-workers", type=int, default=4,
                       help="worker count for the non-serial executors")
    p_run.add_argument("--edge-path", default="auto",
                       choices=["auto", "masked", "compacted"],
                       help="per-window kernel edge traversal: mask the "
                       "full stored structure, pack the active edges once "
                       "per window (bitwise-identical), or let the cost "
                       "model decide per window (default)")
    p_run.add_argument("--backend", default="auto",
                       choices=["auto", "numpy", "pcpm", "numba"],
                       help="kernel propagation backend: flat NumPy "
                       "gather/reduce, PCPM destination-partitioned "
                       "reduce under a cache budget, numba-JIT PCPM "
                       "(degrades to pcpm without numba), or the cost "
                       "model's pick (default); all bitwise-identical")
    p_run.add_argument("--cache-budget", type=int, default=262_144,
                       help="per-partition rank-slice budget in bytes for "
                       "the partitioned backends (default 256 KiB)")
    p_run.add_argument("--top", type=int, default=3,
                       help="top vertices to print per window")
    p_run.add_argument("--every", type=int, default=1,
                       help="print every Nth window")
    p_run.add_argument("--save", default=None, metavar="PATH",
                       help="archive the run to a .npz (see `inspect`)")
    p_run.add_argument("--no-compress", action="store_true",
                       help="save the archive uncompressed so load_run "
                       "can memory-map it")
    p_run.add_argument("--store", default=None, metavar="PATH",
                       help="stream a servable rank store to PATH "
                       "(see `serve` / `query`)")
    p_run.add_argument("--store-dtype", default="float32",
                       choices=["float32", "float64"],
                       help="rank store precision (float64 preserves the "
                       "solver's vectors bitwise)")

    p_cmp = sub.add_parser(
        "compare", help="offline vs streaming vs postmortem wall-clock"
    )
    p_cmp.add_argument("events")
    add_window_args(p_cmp)

    p_sweep = sub.add_parser(
        "sweep", help="simulated multicore parameter sweep"
    )
    p_sweep.add_argument("events")
    add_window_args(p_sweep)
    p_sweep.add_argument("--workers", type=int, default=48)
    p_sweep.add_argument("--multiwindows", type=int, default=6)

    p_kern = sub.add_parser(
        "kernel", help="run a non-PageRank analysis kernel per window"
    )
    p_kern.add_argument("events")
    add_window_args(p_kern)
    p_kern.add_argument(
        "--name",
        default="components",
        choices=["components", "maxcore", "triangles", "katz"],
    )
    p_kern.add_argument("--multiwindows", type=int, default=6)
    p_kern.add_argument("--every", type=int, default=1)

    p_rep = sub.add_parser(
        "report", help="collate benchmark outputs into one Markdown report"
    )
    p_rep.add_argument(
        "--output-dir", default="benchmarks/output",
        help="directory of .txt artifacts",
    )
    p_rep.add_argument("--out", default=None, help="write Markdown here")

    p_ins = sub.add_parser(
        "inspect", help="describe a saved run archive or rank store"
    )
    p_ins.add_argument("archive",
                       help=".npz run archive, .rankstore or .tcsr")

    p_query = sub.add_parser(
        "query", help="query a rank store from the command line"
    )
    p_query.add_argument("store", help="rank store path")
    qsub = p_query.add_subparsers(dest="op", required=True)

    q_topk = qsub.add_parser("top-k", help="highest-ranked vertices")
    q_topk.add_argument("--window", type=int, required=True)
    q_topk.add_argument("-k", type=int, default=10)

    q_rank = qsub.add_parser("rank", help="one vertex's rank in a window")
    q_rank.add_argument("--vertex", type=int, required=True)
    q_rank.add_argument("--window", type=int, required=True)

    q_traj = qsub.add_parser(
        "trajectory", help="a vertex's rank across a window range"
    )
    q_traj.add_argument("--vertex", type=int, required=True)
    q_traj.add_argument("--start", type=int, default=0)
    q_traj.add_argument("--stop", type=int, default=None)

    q_mov = qsub.add_parser(
        "movers", help="largest rank deltas between two windows"
    )
    q_mov.add_argument("--from", dest="w_from", type=int, required=True)
    q_mov.add_argument("--to", dest="w_to", type=int, required=True)
    q_mov.add_argument("-k", type=int, default=10)

    q_wat = qsub.add_parser(
        "window-at", help="windows containing a timestamp"
    )
    q_wat.add_argument("--t", type=int, required=True)

    p_lint = sub.add_parser(
        "lint", help="run the project static-analysis suite"
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src", "benchmarks"],
        help="files or directories to lint (default: src benchmarks)",
    )
    p_lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        dest="fmt", help="report format",
    )
    p_lint.add_argument(
        "--select", default=None,
        help="comma-separated rule names to run (default: all)",
    )
    p_lint.add_argument(
        "--ignore", default=None,
        help="comma-separated rule names to skip",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true",
        help="list rule names and descriptions, then exit",
    )
    p_lint.add_argument(
        "--deep", action="store_true",
        help="also run the whole-program analyses (call graph, lock "
        "flow, async safety, arena lifecycle, determinism)",
    )
    p_lint.add_argument(
        "--explain", metavar="RULE", default=None,
        help="print a rule's description and motivating bug, then exit",
    )
    p_lint.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the report to FILE instead of stdout",
    )
    p_lint.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="accepted-findings baseline for --deep (default: "
        "lint-baseline.json when it exists)",
    )
    p_lint.add_argument(
        "--write-baseline", action="store_true",
        help="record the current --deep findings as the baseline and "
        "exit 0",
    )
    p_lint.add_argument(
        "--no-cache", action="store_true",
        help="rebuild the --deep call graph instead of using "
        ".lint-cache/",
    )

    sub.add_parser(
        "backends",
        help="list kernel backends, their availability, and the "
        "cost-model constants driving backend=auto",
    )

    p_srv = sub.add_parser(
        "serve", help="serve a rank store over JSON/HTTP"
    )
    p_srv.add_argument("store",
                       help="rank store path, or a directory holding "
                       "exactly one (run output discovery)")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8321)
    p_srv.add_argument("--workers", type=int, default=4,
                       help="query worker threads (per shard when "
                       "--shards > 1)")
    p_srv.add_argument("--max-batch", type=int, default=64,
                       help="max queries coalesced into one engine batch")
    p_srv.add_argument("--shards", type=int, default=1,
                       help="shard worker processes; > 1 federates the "
                       "store across a window-partitioned cluster behind "
                       "an asyncio frontend")
    p_srv.add_argument("--replicas", type=int, default=1,
                       help="replica processes per shard (cluster mode); "
                       "replicas share the shard's rows via shared "
                       "memory, zero extra copies")
    p_srv.add_argument("--max-queue", type=int, default=None,
                       help="bound the admission queue (per shard in "
                       "cluster mode); a full queue sheds with 429 "
                       "instead of queueing latency")
    p_srv.add_argument("--submit-timeout", type=float, default=0.0,
                       help="seconds a submit may wait for an admission "
                       "slot before shedding")
    p_srv.add_argument("--max-inflight", type=int, default=256,
                       help="cluster frontend global in-flight request "
                       "cap (cluster mode only)")
    p_srv.add_argument("--verbose", action="store_true",
                       help="log every request")

    p_tr = sub.add_parser(
        "bench-traffic",
        help="drive zipfian query load at a running server and report "
        "p50/p99/qps",
    )
    p_tr.add_argument("url", help="server base URL, e.g. "
                      "http://127.0.0.1:8321")
    p_tr.add_argument("--requests", type=int, default=1000,
                      help="number of queries to send")
    p_tr.add_argument("--concurrency", type=int, default=8,
                      help="concurrent client threads")
    p_tr.add_argument("--zipf-s", type=float, default=1.1,
                      help="zipf skew of vertex/window popularity")
    p_tr.add_argument("--top-k", type=int, default=10,
                      help="k used by top_k/movers queries")
    p_tr.add_argument("--mix", default=None,
                      help="op mix as op=weight pairs, e.g. "
                      "'top_k=0.7,rank=0.2,trajectory=0.05,movers=0.05'")
    p_tr.add_argument("--seed", type=int, default=0)
    p_tr.add_argument("--timeout", type=float, default=10.0,
                      help="per-request timeout in seconds")
    p_tr.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the report as JSON")

    return parser


def _load_events(path: str):
    from repro.events import load_events_npz, load_events_tsv
    from repro.graph.io import is_tcsr, open_events

    if is_tcsr(path):
        return open_events(path)
    if path.endswith(".npz"):
        return load_events_npz(path)
    return load_events_tsv(path)


def _make_spec(events, args):
    from repro.events import WindowSpec

    spec = WindowSpec.covering_days(events, args.delta_days, args.sw)
    if args.max_windows is not None and spec.n_windows > args.max_windows:
        spec = WindowSpec(spec.t0, spec.delta, spec.sw, args.max_windows)
    return spec


def _make_config(args):
    from repro.pagerank import PagerankConfig

    return PagerankConfig(
        alpha=args.alpha,
        tolerance=args.tolerance,
        edge_path=getattr(args, "edge_path", "auto"),
        backend=getattr(args, "backend", "auto"),
        cache_budget=getattr(args, "cache_budget", 262_144),
    )


def _generate_format(args) -> str:
    if args.format != "auto":
        return args.format
    if args.out.endswith(".tcsr"):
        return "tcsr"
    if args.out.endswith(".npz"):
        return "npz"
    return "tsv"


def cmd_generate(args, out) -> int:
    from repro.datasets import get_profile
    from repro.events import save_events_npz, save_events_tsv

    profile = get_profile(args.profile)
    fmt = _generate_format(args)
    if fmt == "tcsr":
        from repro.datasets.profiles import DEFAULT_CHUNK_EVENTS
        from repro.graph.io import TcsrFile

        chunk_events = args.chunk_events or DEFAULT_CHUNK_EVENTS
        profile.generate_tcsr(
            args.out,
            seed_offset=args.seed_offset,
            scale=args.scale,
            chunk_events=chunk_events,
        )
        with TcsrFile(args.out) as artifact:
            n_events = artifact.n_events
            n_vertices = artifact.n_vertices
            stored = artifact.stored_bytes()
        print(
            f"wrote {n_events} events ({n_vertices} vertices, "
            f"{stored / 1e6:.1f} MB mapped) to {args.out}",
            file=out,
        )
        return 0
    events = profile.generate(seed_offset=args.seed_offset, scale=args.scale)
    if fmt == "npz":
        save_events_npz(events, args.out)
    else:
        save_events_tsv(events, args.out)
    print(
        f"wrote {len(events)} events ({events.n_vertices} vertices, "
        f"{events.span // 86_400} days) to {args.out}",
        file=out,
    )
    return 0


def cmd_list(args, out) -> int:
    from repro.datasets import PROFILES
    from repro.reporting import format_table

    rows = [
        [p.name, f"{p.paper_events:,}", f"{p.n_events:,}", p.figure4_shape]
        for p in PROFILES.values()
    ]
    print(
        format_table(
            ["profile", "paper events", "base events", "temporal shape"],
            rows,
        ),
        file=out,
    )
    return 0


def cmd_info(args, out) -> int:
    from repro.analysis import distribution_summary
    from repro.reporting import format_kv

    events = _load_events(args.events)
    shape = distribution_summary(events) if len(events) else None
    info = {
        "events": len(events),
        "vertices": events.n_vertices,
        "span (days)": events.span // 86_400 if len(events) else 0,
    }
    if shape is not None:
        info.update(
            {
                "shape class": shape.shape_class,
                "peak/mean": round(shape.peak_to_mean, 2),
                "gini": round(shape.gini, 3),
                "trend": round(shape.trend, 3),
            }
        )
    print(format_kv(info, title=args.events), file=out)
    return 0


def cmd_run(args, out) -> int:
    from repro.errors import ValidationError
    from repro.models import PostmortemOptions
    from repro.reporting import format_table
    from repro.runtime import DriverContext, make_driver

    if (args.events is None) == (args.graph is None):
        raise ValidationError(
            "give exactly one input: an events file, or --graph PATH"
        )
    if args.graph is not None:
        from repro.graph.io import open_events

        events = open_events(args.graph)
    else:
        events = _load_events(args.events)
    spec = _make_spec(events, args)
    options = PostmortemOptions(
        n_multiwindows=args.multiwindows,
        kernel=args.kernel,
        vector_length=args.vector_length,
        partition_method=args.partition,
        executor=args.executor,
        n_threads=args.executor_workers,
    )
    context = DriverContext(
        executor=args.executor,
        n_workers=args.executor_workers,
        # a pinned path travels on the context too, so drivers that clone
        # or rebuild their config still honour the CLI choice
        edge_path=None if args.edge_path == "auto" else args.edge_path,
        backend=None if args.backend == "auto" else args.backend,
        program=args.program,
    )
    driver = make_driver(
        args.model,
        events,
        spec,
        _make_config(args),
        context=context,
        postmortem_options=options,
    )
    if args.store:
        from repro.service import RankStoreWriter

        with RankStoreWriter(
            args.store,
            n_windows=spec.n_windows,
            n_vertices=events.n_vertices,
            model=driver.model_name,
            program=driver.program.name,
            spec=spec,
            dtype=args.store_dtype,
        ) as writer:
            run = driver.run(value_sink=writer.write_window)
        print(f"wrote rank store to {args.store}", file=out)
    else:
        run = driver.run()
    if args.save:
        from repro.models import save_run

        save_run(run, args.save, compress=not args.no_compress)
        print(f"saved run archive to {args.save}", file=out)
    rows = []
    for w in run.windows[:: max(args.every, 1)]:
        top = ", ".join(
            f"v{v}={s:.4f}" for v, s in w.top_vertices(args.top)
        )
        rows.append(
            [w.window_index, w.n_active_vertices, w.n_active_edges,
             w.iterations, top]
        )
    print(
        format_table(
            ["window", "|V|", "|E|", "iters", f"top-{args.top}"],
            rows,
            title=f"{args.model} {args.program} over "
            f"{spec.n_windows} windows",
        ),
        file=out,
    )
    print(
        f"\ntotal {run.total_time:.3f}s "
        f"(build {run.timings.totals.get('build', 0):.3f}s, "
        f"solve {run.timings.totals.get('pagerank', 0):.3f}s)",
        file=out,
    )
    return 0


def cmd_compare(args, out) -> int:
    from repro.analysis import compare_models
    from repro.reporting import format_bar_chart

    events = _load_events(args.events)
    spec = _make_spec(events, args)
    t = compare_models(events, spec, _make_config(args))
    print(
        format_bar_chart(
            {
                "offline": t.offline_seconds,
                "streaming": t.streaming_seconds,
                "postmortem": t.postmortem_seconds,
            },
            title=f"wall-clock over {spec.n_windows} windows",
            unit="s",
        ),
        file=out,
    )
    print(
        f"\npostmortem vs streaming: {t.postmortem_vs_streaming:.1f}x, "
        f"vs offline: {t.postmortem_vs_offline:.1f}x",
        file=out,
    )
    return 0


def cmd_sweep(args, out) -> int:
    from repro.parallel import (
        AUTO,
        MachineSpec,
        calibrate_cost_model,
        collect_window_stats,
        estimate_makespan,
    )
    from repro.reporting import format_series

    events = _load_events(args.events)
    spec = _make_spec(events, args)
    stats = collect_window_stats(
        events, spec, _make_config(args), args.multiwindows
    )
    model = calibrate_cost_model()
    machine = MachineSpec(args.workers)
    granularities = [1, 4, 16, 64, 256]
    series = {}
    best = (float("inf"), None)
    for level in ("window", "application", "nested"):
        for kernel in ("spmv", "spmm"):
            key = f"{level}/{kernel}"
            ys = []
            for g in granularities:
                t = estimate_makespan(
                    stats, machine, model, level, AUTO, g, kernel, 16
                )
                ys.append(t * 1_000)
                if t < best[0]:
                    best = (t, (level, kernel, g))
            series[key] = ys
    print(
        format_series(
            "granularity",
            granularities,
            series,
            title=(
                f"simulated makespan (ms) on {args.workers} workers, "
                f"auto partitioner"
            ),
        ),
        file=out,
    )
    level, kernel, g = best[1]
    print(
        f"\nbest: {level}/{kernel} at granularity {g} "
        f"({best[0] * 1000:.2f} ms)",
        file=out,
    )
    return 0


def cmd_kernel(args, out) -> int:
    from repro.kernels import (
        TemporalKernelDriver,
        connected_components,
        katz_window,
        max_core,
    )
    from repro.analysis import triangle_count
    from repro.reporting import format_series

    events = _load_events(args.events)
    spec = _make_spec(events, args)
    driver = TemporalKernelDriver(events, spec, args.multiwindows)
    kernels = {
        "components": (connected_components, lambda c: c.n_components),
        "maxcore": (max_core, float),
        "triangles": (triangle_count, float),
        "katz": (katz_window, lambda r: float(r.values.max())),
    }
    kernel, extract = kernels[args.name]
    result = driver.run(kernel, name=args.name)
    series = result.series(extract)
    idx = list(range(0, spec.n_windows, max(args.every, 1)))
    print(
        format_series(
            "window",
            idx,
            {args.name: [float(series[i]) for i in idx]},
            title=f"{args.name} over {spec.n_windows} windows",
        ),
        file=out,
    )
    return 0


def _dump_artifact(out, title, info, header, arrays=None) -> None:
    """Shared presentation for binary artifacts (.rankstore, .tcsr):
    flat summary, decoded preamble, optional per-array layout table."""
    from repro.reporting import format_kv, format_table

    print(format_kv(info, title=title), file=out)
    print(file=out)
    print(format_kv(header, title="header"), file=out)
    if arrays:
        rows = [
            [r["name"], r["dtype"], "x".join(str(d) for d in r["shape"]),
             r["offset"], f"{r['bytes']:,}"]
            for r in arrays
        ]
        print(file=out)
        print(
            format_table(
                ["array", "dtype", "shape", "offset", "bytes"],
                rows,
                title="array layout",
            ),
            file=out,
        )


def cmd_inspect(args, out) -> int:
    from repro.reporting import format_kv
    from repro.graph.io import TcsrFile, is_tcsr
    from repro.service.store import RankStore, is_rank_store

    if is_tcsr(args.archive):
        with TcsrFile(args.archive) as artifact:
            _dump_artifact(
                out, args.archive, artifact.info(),
                artifact.header_info(), artifact.array_table(),
            )
        return 0

    if is_rank_store(args.archive):
        with RankStore(args.archive) as store:
            _dump_artifact(
                out, args.archive, store.info(), store.header_info()
            )
        return 0

    from repro.models import load_run

    run = load_run(args.archive)
    n_vertices = run.windows[0].values.shape[0] if run.windows else 0
    info = {
        "format": "run archive (.npz)",
        "model": run.model,
        "windows": run.n_windows,
        "vertices": n_vertices,
        "total iterations": run.total_iterations,
        "all converged": run.all_converged,
        "total seconds": round(run.total_time, 3),
    }
    print(format_kv(info, title=args.archive), file=out)
    return 0


def cmd_query(args, out) -> int:
    from repro.reporting import format_table
    from repro.service import QueryEngine

    engine = QueryEngine(args.store)
    try:
        if args.op == "top-k":
            rows = [
                [rank + 1, v, f"{s:.6f}"]
                for rank, (v, s) in enumerate(
                    engine.top_k(args.window, args.k)
                )
            ]
            print(
                format_table(
                    ["#", "vertex", "score"], rows,
                    title=f"top-{args.k} of window {args.window}",
                ),
                file=out,
            )
        elif args.op == "rank":
            score = engine.rank(args.vertex, args.window)
            print(
                f"vertex {args.vertex} in window {args.window}: "
                f"{score:.6f}",
                file=out,
            )
        elif args.op == "trajectory":
            traj = engine.trajectory(args.vertex, args.start, args.stop)
            stop = args.start + traj.size
            rows = [
                [w, f"{s:.6f}"]
                for w, s in zip(range(args.start, stop), traj)
            ]
            print(
                format_table(
                    ["window", "score"], rows,
                    title=f"trajectory of vertex {args.vertex}",
                ),
                file=out,
            )
        elif args.op == "movers":
            rows = [
                [m["vertex"], f"{m['delta']:+.6f}",
                 f"{m['rank_from']:.6f}", f"{m['rank_to']:.6f}"]
                for m in engine.movers(args.w_from, args.w_to, args.k)
            ]
            print(
                format_table(
                    ["vertex", "delta", f"w{args.w_from}", f"w{args.w_to}"],
                    rows,
                    title=f"movers {args.w_from} -> {args.w_to}",
                ),
                file=out,
            )
        elif args.op == "window-at":
            windows = engine.windows_at(args.t)
            print(
                f"t={args.t} falls in windows: "
                f"{', '.join(map(str, windows)) or '(none)'}",
                file=out,
            )
    finally:
        engine.close()
    return 0


def _graceful_sigterm() -> None:
    """Route SIGTERM through the KeyboardInterrupt path so `kill` tears
    the server down like Ctrl-C does — in cluster mode an abrupt exit
    would orphan shard workers and leak their shm segments."""
    import signal

    def _raise(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _raise)
    except ValueError:  # lint: disable=silent-except — off the main thread (embedded use) the caller owns signal handling
        pass


def cmd_serve(args, out) -> int:
    from repro.runtime.artifacts import discover_rank_store

    _graceful_sigterm()
    store_path = discover_rank_store(args.store)
    if args.shards > 1:
        return _serve_cluster(args, store_path, out)
    from repro.service import QueryServer

    server = QueryServer(
        store_path,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        submit_timeout=args.submit_timeout,
        verbose=args.verbose,
    )
    store = server.engine.store
    print(
        f"serving {store_path} ({store.n_windows} windows x "
        f"{store.n_vertices} vertices) on {server.url} "
        f"({args.workers} workers; Ctrl-C to stop)",
        file=out,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=out)
    finally:
        server.shutdown()
    return 0


def _serve_cluster(args, store_path, out) -> int:
    from repro.service.cluster import ClusterFrontend, ShardCluster

    cluster = ShardCluster(
        store_path,
        n_shards=args.shards,
        replicas=args.replicas,
        max_queue=args.max_queue if args.max_queue is not None else 64,
        submit_timeout=args.submit_timeout,
        engine_workers=args.workers,
        max_batch=args.max_batch,
    )
    frontend = ClusterFrontend(
        cluster,
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        own_cluster=True,
        verbose=args.verbose,
    )
    try:
        frontend.start()
    except BaseException:
        cluster.shutdown()
        raise
    print(
        f"serving {store_path} ({cluster.n_windows} windows x "
        f"{cluster.n_vertices} vertices) on {frontend.url} "
        f"({args.shards} shards x {args.replicas} replicas; "
        "Ctrl-C to stop)",
        file=out,
    )
    try:
        frontend.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=out)
    finally:
        frontend.shutdown()
    return 0


def cmd_bench_traffic(args, out) -> int:
    import json as json_mod
    import urllib.request

    from repro.errors import ValidationError
    from repro.reporting import format_kv
    from repro.service.cluster.traffic import (
        generate_queries,
        run_load,
    )

    base = args.url.rstrip("/")
    with urllib.request.urlopen(base + "/store", timeout=10) as resp:
        info = json_mod.loads(resp.read())
    n_windows = int(info["windows"])
    n_vertices = int(info["vertices"])

    mix = None
    if args.mix:
        mix = {}
        for token in args.mix.split(","):
            op, _, weight = token.partition("=")
            if not weight:
                raise ValidationError(
                    f"bad --mix entry {token!r}; expected op=weight"
                )
            mix[op.strip()] = float(weight)

    queries = generate_queries(
        args.requests,
        n_windows,
        n_vertices,
        mix=mix,
        zipf_s=args.zipf_s,
        k=args.top_k,
        seed=args.seed,
    )
    report = run_load(
        base, queries, concurrency=args.concurrency, timeout=args.timeout
    )
    payload = report.as_dict()
    if args.as_json:
        print(json_mod.dumps(payload, indent=2), file=out)
        return 0
    summary = {k: v for k, v in payload.items() if k != "ops"}
    print(format_kv(summary, title=f"load against {base}"), file=out)
    for op, stats in payload["ops"].items():
        print(format_kv(stats, title=f"op: {op}"), file=out)
    return 0


def cmd_lint(args, out) -> int:
    from pathlib import Path

    from repro.errors import ValidationError
    from repro.lint import (
        ALL_RULES,
        LintReport,
        iter_python_files,
        lint_paths,
        render_json,
        render_sarif,
        render_text,
        rule_descriptions,
    )
    from repro.lint.analyses import (
        ALL_ANALYSES,
        analysis_descriptions,
        run_deep,
    )
    from repro.lint.baseline import (
        DEFAULT_BASELINE_NAME,
        apply_baseline,
        load_baseline,
        write_baseline,
    )
    from repro.reporting import format_table

    if args.explain:
        catalog = {r.name: r for r in ALL_RULES}
        catalog.update({a.name: a for a in ALL_ANALYSES})
        checker = catalog.get(args.explain)
        if checker is None:
            raise ValidationError(
                f"unknown lint rule {args.explain!r}; known rules: "
                f"{', '.join(sorted(catalog))}"
            )
        deep_note = " (whole-program, needs --deep)" if checker in set(
            ALL_ANALYSES
        ) else ""
        print(f"{checker.name}{deep_note}: {checker.description}",
              file=out)
        if checker.motivation:
            print(f"\nMotivating bug: {checker.motivation}", file=out)
        return 0

    if args.list_rules:
        rows = [[name, desc] for name, desc in rule_descriptions().items()]
        rows += [
            [f"{name} (--deep)", desc]
            for name, desc in analysis_descriptions().items()
        ]
        print(
            format_table(["rule", "description"], rows,
                         title="repro.lint rules"),
            file=out,
        )
        return 0

    def split(spec):
        if spec is None:
            return None
        return [tok for tok in (t.strip() for t in spec.split(",")) if tok]

    select, ignore = split(args.select), split(args.ignore)
    rule_names = set(rule_descriptions())
    analysis_names = set(analysis_descriptions())

    if not args.deep:
        report = lint_paths(args.paths, select=select, ignore=ignore)
        notes = []
    else:
        rule_select = (
            [n for n in select if n in rule_names]
            if select is not None else None
        )
        rule_ignore = (
            [n for n in ignore if n in rule_names]
            if ignore is not None else None
        )
        if select is not None and not rule_select:
            # only analyses selected: still count the files
            report = LintReport(
                findings=[],
                files_checked=len(iter_python_files(args.paths)),
                rules=[],
            )
        else:
            report = lint_paths(
                args.paths, select=rule_select, ignore=rule_ignore
            )
        cache_dir = None if args.no_cache else Path(".lint-cache")
        deep_findings = run_deep(
            args.paths, select=select, ignore=ignore,
            known_rules=sorted(rule_names), cache_dir=cache_dir,
        )
        notes = []
        baseline_path = args.baseline
        if baseline_path is None and Path(DEFAULT_BASELINE_NAME).exists():
            baseline_path = DEFAULT_BASELINE_NAME
        if args.write_baseline:
            target = args.baseline or DEFAULT_BASELINE_NAME
            baseline = write_baseline(deep_findings, target)
            print(
                f"wrote {len(baseline)} baseline entr"
                f"{'y' if len(baseline) == 1 else 'ies'} to {target}",
                file=out,
            )
            return 0
        if baseline_path is not None:
            baseline = load_baseline(baseline_path)
            deep_findings, matched, stale = apply_baseline(
                deep_findings, baseline
            )
            if matched:
                notes.append(
                    f"{matched} finding(s) matched the baseline "
                    f"({baseline_path})"
                )
            for entry in stale:
                notes.append(
                    f"stale baseline entry (no longer matches): "
                    f"[{entry.rule}] {entry.path}: {entry.message}"
                )
        report = LintReport(
            findings=sorted(report.findings + deep_findings),
            files_checked=report.files_checked,
            rules=sorted(
                set(report.rules)
                | {
                    a.name for a in ALL_ANALYSES
                    if (select is None or a.name in select)
                    and a.name not in set(ignore or ())
                }
            ),
        )

    if args.fmt == "json":
        rendered = render_json(report)
    elif args.fmt == "sarif":
        descriptions = dict(rule_descriptions())
        descriptions.update(analysis_descriptions())
        rendered = render_sarif(report, descriptions)
    else:
        rendered = render_text(report)
        if notes:
            rendered += "\n" + "\n".join(notes)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
        print(
            f"wrote {args.fmt} report to {args.output} "
            f"({len(report.findings)} finding(s))",
            file=out,
        )
        for note in notes:
            print(note, file=out)
    else:
        # keep json/sarif stdout machine-parseable: no trailing notes
        print(rendered, file=out)
    return 0 if report.clean else 1


def cmd_backends(args, out) -> int:
    from repro.pagerank.backends import backend_availability
    from repro.pagerank.backends.pcpm import DEFAULT_CACHE_BUDGET
    from repro.parallel.cost_model import (
        DEFAULT_EXPECTED_ITERATIONS,
        PCPM_BIN_COST_RATIO,
        PCPM_LOCALITY_DISCOUNT,
        CostModel,
    )
    from repro.reporting import format_table

    rows = [
        [name, "yes" if available else "no", note]
        for name, (available, note) in backend_availability().items()
    ]
    print(
        format_table(["backend", "available", "notes"], rows,
                     title="kernel backends"),
        file=out,
    )

    model = CostModel()
    const_rows = [
        ["c_edge", f"{model.c_edge:.3e}",
         "flat per-edge gather+reduce cost (s)"],
        ["c_edge_local", f"{model.c_edge_local:.3e}",
         "per-edge cost inside a cache-resident partition (s)"],
        ["c_bin", f"{model.c_bin:.3e}",
         "one-time per-edge destination-binning cost (s)"],
        ["c_partition", f"{model.c_partition:.3e}",
         "per-partition per-iteration overhead (s)"],
        ["locality discount", f"{PCPM_LOCALITY_DISCOUNT:g}",
         "c_edge_local / c_edge"],
        ["bin cost ratio", f"{PCPM_BIN_COST_RATIO:g}",
         "c_bin / c_edge"],
        ["default cache budget", f"{DEFAULT_CACHE_BUDGET}",
         "bytes of rank slice per partition"],
        ["default expected iterations",
         f"{DEFAULT_EXPECTED_ITERATIONS}",
         "amortization horizon when no hint is available"],
    ]
    print(
        format_table(["constant", "value", "meaning"], const_rows,
                     title="backend=auto cost model"),
        file=out,
    )
    return 0


def cmd_report(args, out) -> int:
    from repro.reporting.report import generate_report

    text = generate_report(args.output_dir, report_path=args.out)
    if args.out:
        print(f"wrote report to {args.out}", file=out)
    else:
        print(text, file=out)
    return 0


_COMMANDS = {
    "generate": cmd_generate,
    "list": cmd_list,
    "info": cmd_info,
    "run": cmd_run,
    "compare": cmd_compare,
    "sweep": cmd_sweep,
    "kernel": cmd_kernel,
    "lint": cmd_lint,
    "backends": cmd_backends,
    "report": cmd_report,
    "inspect": cmd_inspect,
    "query": cmd_query,
    "serve": cmd_serve,
    "bench-traffic": cmd_bench_traffic,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
