"""Low-level helpers shared across the library.

The modules here implement the vectorization primitives recommended by the
HPC-Python guides (segment reductions via ``reduceat``, contiguous views,
no Python-level edge loops) plus small timing/validation utilities.
"""

from repro.utils.segments import (
    segment_sum,
    segment_count,
    segment_max,
    segment_min,
    row_lengths,
    lengths_to_indptr,
    indptr_to_row_ids,
)
from repro.utils.timer import Timer, TimingAccumulator
from repro.utils.validation import (
    check_1d_int,
    check_1d_float,
    check_same_length,
    check_nonnegative,
    check_positive,
    check_probability,
    check_sorted,
)

__all__ = [
    "segment_sum",
    "segment_count",
    "segment_max",
    "segment_min",
    "row_lengths",
    "lengths_to_indptr",
    "indptr_to_row_ids",
    "Timer",
    "TimingAccumulator",
    "check_1d_int",
    "check_1d_float",
    "check_same_length",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "check_sorted",
]
