"""Argument-validation helpers.

Every public entry point validates its inputs once at the boundary and then
trusts them internally, keeping the hot kernels free of per-call checks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "check_1d_int",
    "check_1d_float",
    "check_same_length",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "check_sorted",
]


def check_1d_int(arr, name: str) -> np.ndarray:
    """Coerce to a contiguous 1-D int64 array, rejecting floats with
    fractional parts."""
    out = np.ascontiguousarray(arr)
    if out.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {out.shape}")
    if not np.issubdtype(out.dtype, np.integer):
        if np.issubdtype(out.dtype, np.floating):
            if out.size and not np.all(np.mod(out, 1) == 0):
                raise ValidationError(f"{name} must contain integers")
        else:
            raise ValidationError(f"{name} must be an integer array")
    return out.astype(np.int64, copy=False)


def check_1d_float(arr, name: str) -> np.ndarray:
    """Coerce to a contiguous 1-D float64 array."""
    out = np.ascontiguousarray(arr, dtype=np.float64)
    if out.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {out.shape}")
    return out


def check_same_length(*pairs) -> None:
    """``check_same_length((a, 'a'), (b, 'b'))`` -> raise unless equal len."""
    if not pairs:
        return
    ref_arr, ref_name = pairs[0]
    for arr, name in pairs[1:]:
        if len(arr) != len(ref_arr):
            raise ValidationError(
                f"{name} (len {len(arr)}) must match {ref_name} "
                f"(len {len(ref_arr)})"
            )


def check_nonnegative(value, name: str):
    """Raise unless ``value >= 0``; returns the value."""
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return value


def check_positive(value, name: str):
    """Raise unless ``value > 0``; returns the value."""
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Raise unless ``value`` lies in [0, 1]; returns it as float."""
    if not (0.0 <= value <= 1.0):
        raise ValidationError(f"{name} must be in [0, 1], got {value}")
    return float(value)


def check_sorted(arr: np.ndarray, name: str) -> np.ndarray:
    """Raise unless ``arr`` is sorted non-decreasingly; returns it."""
    arr = np.asarray(arr)
    if arr.size > 1 and np.any(np.diff(arr) < 0):
        raise ValidationError(f"{name} must be sorted in non-decreasing order")
    return arr
