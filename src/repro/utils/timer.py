"""Timing utilities used by the benchmark harness and the cost-model
calibration.

The paper reports wall-clock times per execution model; we additionally
accumulate *named phases* (graph build, init, iterate) so EXPERIMENTS.md can
attribute where each model spends its time.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["Timer", "TimingAccumulator"]


class Timer:
    """A context-manager stopwatch.

    >>> with Timer() as t:
    ...     sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed


@dataclass
class TimingAccumulator:
    """Accumulates elapsed seconds under named phases.

    Used by every execution-model driver so benchmarks can report a
    build/compute breakdown alongside the total.
    """

    totals: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    counts: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def add(self, phase: str, seconds: float) -> None:
        self.totals[phase] += seconds
        self.counts[phase] += 1

    def phase(self, name: str) -> "_PhaseContext":
        """Context manager that times a block and records it under ``name``."""
        return _PhaseContext(self, name)

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def merge(self, other: "TimingAccumulator") -> None:
        for k, v in other.totals.items():
            self.totals[k] += v
        for k, c in other.counts.items():
            self.counts[k] += c

    def as_dict(self) -> Dict[str, float]:
        return dict(self.totals)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v:.4f}s" for k, v in sorted(self.totals.items()))
        return f"TimingAccumulator({parts})"


class _PhaseContext:
    def __init__(self, acc: TimingAccumulator, name: str) -> None:
        self._acc = acc
        self._name = name
        self._timer = Timer()

    def __enter__(self) -> Timer:
        self._timer.start()
        return self._timer

    def __exit__(self, *exc) -> None:
        self._acc.add(self._name, self._timer.stop())
