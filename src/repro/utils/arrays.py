"""Array provenance helpers: heap vs memory-mapped backing.

Out-of-core artifacts (``.tcsr``, ``.rankstore``) hand the library arrays
that *look* like any other ndarray but are views into file-backed pages.
Two accounting questions follow:

* **honesty** — ``memory_bytes()`` reports must not count mapped pages as
  allocated heap (a 10⁷-event artifact "costs" almost nothing resident);
* **zero-copy publication** — the shared arena can skip copying an array
  into ``/dev/shm`` entirely when every worker can just map the same file
  region, which requires recovering ``(path, byte offset)`` from a view.

Both walk the ``.base`` chain: numpy views keep a reference to the array
(or ``mmap.mmap`` buffer) they alias, so the root's identity survives
slicing, ``np.asarray`` and dtype-preserving ``ascontiguousarray``.
"""

from __future__ import annotations

import mmap
import os
from typing import Iterable, Optional, Tuple

import numpy as np

__all__ = [
    "is_mmap_backed",
    "file_backed_descriptor",
    "heap_and_mapped_bytes",
]


def _memmap_root(arr) -> Optional[np.memmap]:
    """The ``np.memmap`` an array ultimately views, if any.

    Walks to the *deepest* memmap in the base chain: slicing a memmap
    yields another ``np.memmap`` instance whose ``offset``/``filename``
    attributes are inherited verbatim (stale for the slice), so only the
    root mapping — the one numpy created against the file — pairs a
    trustworthy ``offset`` with its data pointer.
    """
    node, root = arr, None
    while isinstance(node, np.ndarray):
        if isinstance(node, np.memmap):
            root = node
        node = node.base
    return root


def is_mmap_backed(arr) -> bool:
    """Whether ``arr`` aliases memory-mapped (file-backed) pages.

    True for ``np.memmap`` instances, any view whose base chain reaches
    one, and ``np.frombuffer`` views over a raw ``mmap.mmap`` object.
    """
    node = arr
    while node is not None:
        if isinstance(node, (np.memmap, mmap.mmap)):
            return True
        node = getattr(node, "base", None)
    return False


def file_backed_descriptor(arr) -> Optional[Tuple[str, int]]:
    """``(path, file_offset)`` of a contiguous file-backed array view.

    Returns ``None`` when the array does not alias an ``np.memmap`` with
    a known filename, or is not C-contiguous (a strided view has no
    single file extent).  The offset accounts for slicing: it is the
    root memmap's file offset plus the view's byte displacement.
    """
    if not isinstance(arr, np.ndarray) or not arr.flags["C_CONTIGUOUS"]:
        return None
    root = _memmap_root(arr)
    if root is None:
        return None
    filename = getattr(root, "filename", None)
    if filename is None:
        return None
    delta = (
        arr.__array_interface__["data"][0]
        - root.__array_interface__["data"][0]
    )
    if delta < 0 or delta + arr.nbytes > root.nbytes:
        return None
    return os.fspath(filename), int(root.offset) + int(delta)


def heap_and_mapped_bytes(arrays: Iterable) -> Tuple[int, int]:
    """Split ``sum(a.nbytes)`` into (heap-allocated, memory-mapped).

    Mapped arrays occupy address space, not resident heap — resident cost
    is whatever the kernel currently caches and is reclaimable under
    pressure, so memory reports must keep the two apart.
    """
    heap = 0
    mapped = 0
    for a in arrays:
        if a is None:
            continue
        if is_mmap_backed(a):
            mapped += a.nbytes
        else:
            heap += a.nbytes
    return heap, mapped
