"""Vectorized segment reductions over CSR-style index pointers.

A *segment* is the half-open slice ``values[indptr[i]:indptr[i+1]]``.  These
reductions are the core primitive behind every SpMV/SpMM kernel in the
library: one PageRank iteration is exactly ``segment_sum`` of per-edge
contributions grouped by destination vertex.

``np.add.reduceat`` is the fastest pure-NumPy way to do this, but it has a
well-known wart: for an empty segment it *returns the element at the start
index* instead of the reduction identity, and it cannot handle a start index
equal to ``len(values)``.  :func:`segment_sum` repairs both cases so callers
get mathematically correct results for arbitrary (possibly empty, possibly
trailing-empty) segments.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "segment_sum",
    "segment_sum_ordered",
    "segment_count",
    "segment_max",
    "segment_min",
    "row_lengths",
    "lengths_to_indptr",
    "indptr_to_row_ids",
]


def _check_indptr(indptr: np.ndarray, n_values: int) -> np.ndarray:
    indptr = np.asarray(indptr)
    if indptr.ndim != 1 or indptr.size == 0:
        raise ValidationError("indptr must be a non-empty 1-D array")
    if indptr[0] != 0:
        raise ValidationError(f"indptr[0] must be 0, got {indptr[0]}")
    if indptr[-1] != n_values:
        raise ValidationError(
            f"indptr[-1] ({indptr[-1]}) must equal len(values) ({n_values})"
        )
    if np.any(np.diff(indptr) < 0):
        raise ValidationError("indptr must be non-decreasing")
    return indptr


def segment_sum(
    values: np.ndarray,
    indptr: np.ndarray,
    out: np.ndarray = None,
) -> np.ndarray:
    """Sum ``values`` within each CSR segment.

    Parameters
    ----------
    values:
        1-D array of length ``nnz``, or 2-D ``(nnz, k)`` array in which case
        each column is reduced independently (the SpMM case).
    indptr:
        CSR index pointer of length ``n_segments + 1`` with
        ``indptr[0] == 0`` and ``indptr[-1] == nnz``.
    out:
        Optional preallocated result array of shape
        ``(n_segments,) + values.shape[1:]`` and matching dtype — a
        :class:`~repro.pagerank.workspace.Workspace` buffer in the hot
        kernels.  Its contents are fully overwritten.

    Returns
    -------
    numpy.ndarray
        ``(n_segments,)`` or ``(n_segments, k)`` array of per-segment sums;
        empty segments sum to exactly ``0``.
    """
    values = np.asarray(values)
    indptr = _check_indptr(indptr, values.shape[0])
    n_seg = indptr.size - 1
    out_shape = (n_seg,) + values.shape[1:]
    if out is None:
        out = np.zeros(out_shape, dtype=values.dtype)
    else:
        if out.shape != out_shape or out.dtype != values.dtype:
            raise ValidationError(
                f"out must have shape {out_shape} and dtype "
                f"{values.dtype}, got {out.shape}/{out.dtype}"
            )
        out.fill(0)
    if n_seg == 0 or values.shape[0] == 0:
        return out

    # reduceat over only the non-empty segments: consecutive non-empty
    # starts are exactly those segments' boundaries (empty segments have
    # start == end, so skipping them leaves the spans intact).  This also
    # avoids reduceat's inability to take a start index == len(values).
    nonempty = indptr[:-1] < indptr[1:]
    if nonempty.any():
        out[nonempty] = np.add.reduceat(
            values, indptr[:-1][nonempty], axis=0
        )
    return out


def segment_sum_ordered(
    values: np.ndarray,
    row_ids: np.ndarray,
    n_rows: int,
    out: np.ndarray = None,
    scratch: np.ndarray = None,
) -> np.ndarray:
    """Left-to-right sequential segment sum keyed by per-entry row ids.

    :func:`segment_sum` (``np.add.reduceat``) is the fastest reduction but
    its floating-point rounding depends on each segment's *length*: NumPy's
    add loop sums pairwise, so the reduction tree — and the low bits of the
    result — change when exact-zero entries are inserted or removed.
    ``np.bincount`` accumulates strictly sequentially in array order, which
    makes this variant **zero-insertion invariant**: dropping entries whose
    value is exactly ``0.0`` cannot change the result bitwise (``x + 0.0``
    is exact for every non-negative ``x``).  The PageRank kernels reduce
    with it so their masked and compacted edge paths are bitwise-identical.

    Parameters
    ----------
    values:
        ``(nnz,)`` or ``(nnz, k)`` float contributions (columns reduced
        independently).
    row_ids:
        ``(nnz,)`` non-negative destination row per entry (need not be
        sorted; order only matters *within* a row).
    n_rows:
        Number of output rows.
    out:
        Optional ``(n_rows,)`` / ``(n_rows, k)`` float64 result buffer,
        fully overwritten.  ``np.bincount`` has no ``out=`` of its own, so
        its internal Θ(n_rows) allocation per call remains either way.
    scratch:
        Optional ``(nnz,)`` float64 buffer for the 2-D case: each strided
        column is staged through it so ``bincount`` reads contiguously.
    """
    values = np.asarray(values)
    if values.shape[0] != row_ids.shape[0]:
        raise ValidationError(
            f"values and row_ids must agree on nnz, got "
            f"{values.shape[0]} != {row_ids.shape[0]}"
        )
    if values.ndim == 1:
        y = np.bincount(row_ids, weights=values, minlength=n_rows)
        if out is None:
            return y
        np.copyto(out, y)
        return out
    k = values.shape[1]
    if out is None:
        out = np.empty((n_rows, k), dtype=np.float64)
    for j in range(k):
        col = values[:, j]
        if scratch is not None:
            np.copyto(scratch, col)
            col = scratch
        out[:, j] = np.bincount(row_ids, weights=col, minlength=n_rows)
    return out


def segment_count(
    mask: np.ndarray,
    indptr: np.ndarray,
    cast_buffer: np.ndarray = None,
) -> np.ndarray:
    """Count ``True`` entries of a boolean ``mask`` within each segment.

    ``cast_buffer`` optionally supplies a reusable int64 array of the
    mask's shape for the bool→int64 widening (otherwise a fresh array is
    allocated per call).
    """
    mask = np.asarray(mask)
    if mask.dtype != np.bool_:
        raise ValidationError("segment_count expects a boolean mask")
    if (
        cast_buffer is not None
        and cast_buffer.shape == mask.shape
        and cast_buffer.dtype == np.int64
    ):
        np.copyto(cast_buffer, mask)
        return segment_sum(cast_buffer, indptr)
    return segment_sum(mask.astype(np.int64), indptr)


def segment_max(values: np.ndarray, indptr: np.ndarray, empty_value=0):
    """Per-segment maximum; empty segments get ``empty_value``."""
    values = np.asarray(values)
    indptr = _check_indptr(indptr, values.shape[0])
    n_seg = indptr.size - 1
    out = np.full((n_seg,) + values.shape[1:], empty_value, dtype=values.dtype)
    if values.shape[0] == 0 or n_seg == 0:
        return out
    nonempty = indptr[:-1] < indptr[1:]
    if nonempty.any():
        out[nonempty] = np.maximum.reduceat(
            values, indptr[:-1][nonempty], axis=0
        )
    return out


def segment_min(values: np.ndarray, indptr: np.ndarray, empty_value=0):
    """Per-segment minimum; empty segments get ``empty_value``."""
    values = np.asarray(values)
    indptr = _check_indptr(indptr, values.shape[0])
    n_seg = indptr.size - 1
    out = np.full((n_seg,) + values.shape[1:], empty_value, dtype=values.dtype)
    if values.shape[0] == 0 or n_seg == 0:
        return out
    nonempty = indptr[:-1] < indptr[1:]
    if nonempty.any():
        out[nonempty] = np.minimum.reduceat(
            values, indptr[:-1][nonempty], axis=0
        )
    return out


def row_lengths(indptr: np.ndarray) -> np.ndarray:
    """Segment lengths ``indptr[i+1] - indptr[i]``."""
    indptr = np.asarray(indptr)
    if indptr.ndim != 1 or indptr.size == 0:
        raise ValidationError("indptr must be a non-empty 1-D array")
    return np.diff(indptr)


def lengths_to_indptr(lengths: np.ndarray) -> np.ndarray:
    """Build a CSR index pointer from per-segment lengths."""
    lengths = np.asarray(lengths)
    if lengths.ndim != 1:
        raise ValidationError("lengths must be 1-D")
    if lengths.size and lengths.min() < 0:
        raise ValidationError("lengths must be non-negative")
    indptr = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    return indptr


def indptr_to_row_ids(indptr: np.ndarray) -> np.ndarray:
    """Expand a CSR index pointer into a per-entry row-id array.

    The inverse of grouping: ``row_ids[j] == i`` iff entry ``j`` lies in
    segment ``i``.  Vectorized via ``np.repeat``.
    """
    indptr = np.asarray(indptr)
    lengths = row_lengths(indptr)
    return np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)
