"""Synthetic temporal-graph datasets.

The paper evaluates on 7 real datasets (Table 1) chosen for their distinct
temporal edge distributions (Figure 4).  Without network access to SNAP we
generate seeded synthetic equivalents whose *rate curves over time* match
each dataset's qualitative shape — a documented substitution (DESIGN.md §2)
that preserves the property the paper's conclusions depend on: which
windows carry the work, and hence which parallelization level wins.
"""

from repro.datasets.generators import (
    RateCurve,
    spike_rate,
    burst_decay_rate,
    irregular_rate,
    growth_rate,
    bursty_steady_rate,
    generate_events,
    preferential_attachment_endpoints,
    bipartite_endpoints,
)
from repro.datasets.profiles import (
    DatasetProfile,
    PROFILES,
    get_profile,
    list_profiles,
)
from repro.datasets.registry import DatasetRegistry, default_registry

__all__ = [
    "RateCurve",
    "spike_rate",
    "burst_decay_rate",
    "irregular_rate",
    "growth_rate",
    "bursty_steady_rate",
    "generate_events",
    "preferential_attachment_endpoints",
    "bipartite_endpoints",
    "DatasetProfile",
    "PROFILES",
    "get_profile",
    "list_profiles",
    "DatasetRegistry",
    "default_registry",
]
