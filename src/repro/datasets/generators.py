"""Building blocks for synthetic temporal event sets.

A dataset is generated in two independent steps:

1. **When do events happen?** A :class:`RateCurve` gives the relative event
   rate over the dataset's time span; event timestamps are drawn by inverse
   CDF sampling of the (piecewise-constant) rate, so a spike in the curve
   produces a spike of events exactly like Figure 4a's Enron scandal burst.
2. **Between whom?** An endpoint sampler draws (src, dst) pairs.  Social
   graphs are heavy-tailed, so the default sampler uses a Zipf-like
   preferential weighting; review graphs (Epinions) use a bipartite sampler.

Everything is vectorized and driven by a seeded ``numpy.random.Generator``
for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.events.event_set import TemporalEventSet
from repro.utils.validation import check_positive

__all__ = [
    "RateCurve",
    "spike_rate",
    "burst_decay_rate",
    "irregular_rate",
    "growth_rate",
    "bursty_steady_rate",
    "preferential_attachment_endpoints",
    "bipartite_endpoints",
    "generate_events",
    "generate_event_chunks",
]


@dataclass(frozen=True)
class RateCurve:
    """A piecewise-constant relative event rate over ``n_bins`` time bins.

    ``weights[i]`` is proportional to how many events land in bin ``i``;
    only ratios matter.
    """

    weights: np.ndarray

    def __post_init__(self) -> None:
        w = np.asarray(self.weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise DatasetError("rate curve needs a non-empty 1-D weight array")
        if np.any(w < 0) or not np.any(w > 0):
            raise DatasetError("rate weights must be >= 0 with at least one > 0")
        object.__setattr__(self, "weights", w)

    @property
    def n_bins(self) -> int:
        return self.weights.size

    def sample_times(
        self, n_events: int, t_min: int, t_max: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n_events`` integer timestamps in ``[t_min, t_max]``
        following the curve, returned sorted."""
        check_positive(n_events, "n_events")
        if t_max <= t_min:
            raise DatasetError(f"t_max ({t_max}) must exceed t_min ({t_min})")
        p = self.weights / self.weights.sum()
        bins = rng.choice(self.n_bins, size=n_events, p=p)
        # uniform position inside the chosen bin
        width = (t_max - t_min) / self.n_bins
        offsets = rng.random(n_events)
        times = t_min + ((bins + offsets) * width).astype(np.int64)
        np.clip(times, t_min, t_max, out=times)
        times.sort()
        return times


# ----------------------------------------------------------------------
# the five qualitative shapes of Figure 4
# ----------------------------------------------------------------------

def spike_rate(
    n_bins: int = 120,
    spike_center: float = 0.55,
    spike_width: float = 0.05,
    spike_height: float = 40.0,
    baseline: float = 1.0,
) -> RateCurve:
    """Enron-style: quiet baseline with one dominant spike (Fig. 4a)."""
    x = np.linspace(0.0, 1.0, n_bins)
    spike = spike_height * np.exp(-0.5 * ((x - spike_center) / spike_width) ** 2)
    return RateCurve(baseline + spike)


def burst_decay_rate(
    n_bins: int = 120,
    peak: float = 0.35,
    rise: float = 0.08,
    decay: float = 0.25,
    height: float = 60.0,
    baseline: float = 0.5,
) -> RateCurve:
    """Epinions-style: sharp ramp to a huge review burst, slow decay
    (Fig. 4b)."""
    x = np.linspace(0.0, 1.0, n_bins)
    w = np.where(
        x < peak,
        height * np.exp(-0.5 * ((x - peak) / rise) ** 2),
        height * np.exp(-(x - peak) / decay),
    )
    return RateCurve(baseline + w)


def irregular_rate(
    n_bins: int = 120,
    n_bumps: int = 6,
    seed: int = 7,
    baseline: float = 1.0,
) -> RateCurve:
    """HepTh-style: several irregular bumps of varying height (Fig. 4c)."""
    rng = np.random.default_rng(seed)
    x = np.linspace(0.0, 1.0, n_bins)
    w = np.full(n_bins, baseline)
    centers = rng.uniform(0.05, 0.95, size=n_bumps)
    heights = rng.uniform(3.0, 25.0, size=n_bumps)
    widths = rng.uniform(0.02, 0.08, size=n_bumps)
    for c, h, s in zip(centers, heights, widths):
        w += h * np.exp(-0.5 * ((x - c) / s) ** 2)
    return RateCurve(w)


def growth_rate(
    n_bins: int = 120, exponent: float = 2.0, baseline: float = 0.2
) -> RateCurve:
    """wiki-talk / stackoverflow / askubuntu-style: smooth polynomial growth
    of activity over time (Figs. 4e-g)."""
    x = np.linspace(0.0, 1.0, n_bins)
    return RateCurve(baseline + x ** exponent)


def bursty_steady_rate(
    n_bins: int = 120,
    n_bursts: int = 10,
    burst_height: float = 6.0,
    seed: int = 13,
    baseline: float = 3.0,
) -> RateCurve:
    """YouTube-style: steady high volume with superimposed bursts
    (Fig. 4d)."""
    rng = np.random.default_rng(seed)
    w = np.full(n_bins, baseline)
    idx = rng.choice(n_bins, size=min(n_bursts, n_bins), replace=False)
    w[idx] += burst_height * rng.random(idx.size)
    return RateCurve(w)


# ----------------------------------------------------------------------
# endpoint samplers
# ----------------------------------------------------------------------

def _zipf_weights(n: int, skew: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** (-skew)
    return w / w.sum()


def preferential_attachment_endpoints(
    n_events: int,
    n_vertices: int,
    rng: np.random.Generator,
    skew: float = 0.9,
) -> Tuple[np.ndarray, np.ndarray]:
    """Heavy-tailed (src, dst) sampling.

    Vertices are assigned a fixed Zipf popularity; both endpoints are drawn
    from it independently (rejecting self-loops), yielding the power-law
    degree distribution the paper highlights as the source of per-vertex
    load imbalance (Section 6.3.2).
    """
    check_positive(n_vertices, "n_vertices")
    if n_vertices < 2:
        raise DatasetError("need at least 2 vertices to draw edges")
    p = _zipf_weights(n_vertices, skew)
    src = rng.choice(n_vertices, size=n_events, p=p)
    dst = rng.choice(n_vertices, size=n_events, p=p)
    # reject self loops by redrawing (expected constant rounds)
    loops = src == dst
    while loops.any():
        dst[loops] = rng.choice(n_vertices, size=int(loops.sum()), p=p)
        loops = src == dst
    return src.astype(np.int64), dst.astype(np.int64)


def bipartite_endpoints(
    n_events: int,
    n_left: int,
    n_right: int,
    rng: np.random.Generator,
    skew_left: float = 0.8,
    skew_right: float = 1.1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Bipartite (user -> product) sampling for the Epinions profile.

    Left vertices are ``0..n_left-1``, right vertices ``n_left..n_left +
    n_right - 1``; every edge goes left -> right.
    """
    check_positive(n_left, "n_left")
    check_positive(n_right, "n_right")
    src = rng.choice(n_left, size=n_events, p=_zipf_weights(n_left, skew_left))
    dst = n_left + rng.choice(
        n_right, size=n_events, p=_zipf_weights(n_right, skew_right)
    )
    return src.astype(np.int64), dst.astype(np.int64)


EndpointSampler = Callable[
    [int, int, np.random.Generator], Tuple[np.ndarray, np.ndarray]
]


def generate_events(
    n_events: int,
    n_vertices: int,
    rate: RateCurve,
    t_min: int,
    t_max: int,
    seed: int,
    endpoint_sampler: Optional[EndpointSampler] = None,
    symmetric: bool = False,
) -> TemporalEventSet:
    """Generate a full synthetic temporal event set.

    Parameters
    ----------
    endpoint_sampler:
        Callable ``(n_events, n_vertices, rng) -> (src, dst)``; defaults to
        :func:`preferential_attachment_endpoints`.
    symmetric:
        Mirror every event (undirected collaboration graphs).
    """
    rng = np.random.default_rng(seed)
    times = rate.sample_times(n_events, t_min, t_max, rng)
    if endpoint_sampler is None:
        src, dst = preferential_attachment_endpoints(n_events, n_vertices, rng)
    else:
        src, dst = endpoint_sampler(n_events, n_vertices, rng)
    events = TemporalEventSet(src, dst, times, n_vertices=n_vertices, sort=False)
    if symmetric:
        events = events.symmetrized()
    return events


def generate_event_chunks(
    n_events: int,
    n_vertices: int,
    rate: RateCurve,
    t_min: int,
    t_max: int,
    seed: int,
    endpoint_sampler: Optional[EndpointSampler] = None,
    symmetric: bool = False,
    chunk_events: int = 1_000_000,
):
    """Generate a synthetic event set as a stream of bounded chunks.

    The out-of-core sibling of :func:`generate_events`: yields ``(src,
    dst, time)`` triples of at most ``chunk_events`` base events each
    (``2 x chunk_events`` when ``symmetric`` — every chunk carries its
    own mirrors), all drawn from **one** sequential RNG.  Feed the chunks
    straight to :class:`repro.graph.io.TemporalCSRBuilder`: the builder's
    stable time merge yields a valid event set without the chunks ever
    coexisting in memory.

    Determinism: a fixed ``(seed, chunk_events)`` pair always yields the
    same stream, and when everything fits in a single chunk the result is
    *bitwise-identical* to :func:`generate_events` (same RNG call
    sequence, same mirror concatenation order).  Different chunk sizes
    produce statistically equivalent but not bitwise-equal sets — the RNG
    interleaves time and endpoint draws per chunk.
    """
    check_positive(n_events, "n_events")
    check_positive(chunk_events, "chunk_events")
    rng = np.random.default_rng(seed)
    if endpoint_sampler is None:
        endpoint_sampler = preferential_attachment_endpoints
    for lo in range(0, n_events, chunk_events):
        m = min(chunk_events, n_events - lo)
        times = rate.sample_times(m, t_min, t_max, rng)
        src, dst = endpoint_sampler(m, n_vertices, rng)
        if symmetric:
            src, dst, times = (
                np.concatenate([src, dst]),
                np.concatenate([dst, src]),
                np.concatenate([times, times]),
            )
        yield src, dst, times
