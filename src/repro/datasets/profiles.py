"""The 7 dataset profiles of Table 1, as seeded synthetic generators.

Each profile records the paper's event count and parameter grid (sliding
offsets and window sizes) and generates a scaled-down event set with the
same *temporal shape* (Figure 4) and the same *time span*, so the paper's
(sw, delta) values can be used verbatim.  The scale factor is stored so the
benchmark reports can state the substitution explicitly.

Sliding offsets in the paper are given in seconds (43200 = 12 h, 86400 =
1 d, 172800 = 2 d, 259200 = 4 d... note the paper uses 259200 = 3 d in
figure captions but lists "4 days" in Table 1; we follow the figure values),
window sizes in days (or years for Enron).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Tuple

import numpy as np

from repro.datasets.generators import (
    RateCurve,
    bipartite_endpoints,
    burst_decay_rate,
    bursty_steady_rate,
    generate_event_chunks,
    generate_events,
    growth_rate,
    irregular_rate,
    spike_rate,
)
from repro.errors import DatasetError
from repro.events.event_set import TemporalEventSet

__all__ = ["DatasetProfile", "PROFILES", "get_profile", "list_profiles"]

#: chunk size used when a profile generates straight to disk
DEFAULT_CHUNK_EVENTS = 1_000_000

DAY = 86_400
YEAR = 365 * DAY

# paper sliding offsets, in seconds
SW_12H = 43_200
SW_1D = 86_400
SW_2D = 172_800
SW_3D = 259_200


@dataclass(frozen=True)
class DatasetProfile:
    """A named synthetic stand-in for one of the paper's datasets.

    Attributes
    ----------
    name:
        Dataset name as used in the paper.
    paper_events:
        |Events| in the real dataset (Table 1).
    n_events:
        |Events| generated here (scaled down).
    n_vertices:
        Synthetic vertex count.
    span_seconds:
        Covered time span; matches the real dataset's order of magnitude so
        the paper's (sw, delta) grids apply unchanged.
    sliding_offsets:
        The paper's sliding offsets for this dataset, in seconds.
    window_sizes_days:
        The paper's window sizes for this dataset, in days.
    rate_factory / endpoint_factory:
        How timestamps and endpoints are drawn.
    symmetric:
        Mirror events (collaboration graphs).
    figure4_shape:
        Which Figure 4 shape this profile mimics (documentation).
    """

    name: str
    paper_events: int
    n_events: int
    n_vertices: int
    span_seconds: int
    sliding_offsets: Tuple[int, ...]
    window_sizes_days: Tuple[float, ...]
    rate_factory: Callable[[], RateCurve]
    endpoint_factory: Callable[..., tuple] | None = None
    symmetric: bool = False
    figure4_shape: str = ""
    base_seed: int = field(default=2022)

    @property
    def scale_factor(self) -> float:
        """How many real events each synthetic event stands for."""
        return self.paper_events / self.n_events

    def generate(self, seed_offset: int = 0, scale: float = 1.0) -> TemporalEventSet:
        """Generate the event set.

        Parameters
        ----------
        seed_offset:
            Added to the profile's base seed, for independent replicas.
        scale:
            Multiplier on ``n_events`` (and sqrt-scaled vertex count) to
            grow or shrink the instance.
        """
        n_events, n_vertices = self._scaled_counts(scale)
        return generate_events(
            n_events=n_events,
            n_vertices=n_vertices,
            rate=self.rate_factory(),
            t_min=1_000_000_000,  # ~2001, cosmetic only
            t_max=1_000_000_000 + self.span_seconds,
            seed=self.base_seed + seed_offset,
            endpoint_sampler=self._sampler(n_vertices),
            symmetric=self.symmetric,
        )

    def _scaled_counts(self, scale: float) -> Tuple[int, int]:
        """(n_events, n_vertices) after applying ``scale`` — events scale
        linearly, vertices by sqrt (keeps average degree drifting the way
        real growing graphs do)."""
        if scale <= 0:
            raise DatasetError(f"scale must be > 0, got {scale}")
        n_events = max(16, int(self.n_events * scale))
        n_vertices = max(8, int(self.n_vertices * np.sqrt(scale)))
        return n_events, n_vertices

    def _sampler(self, n_vertices: int):
        """The endpoint sampler closed over the *scaled* vertex count
        (bipartite profiles size their partitions from it)."""
        if self.endpoint_factory is None:
            return None
        factory = self.endpoint_factory

        def sampler(n, nv, rng, _f=factory, _nv=n_vertices):
            return _f(n, _nv, rng)

        return sampler

    def iter_event_chunks(
        self,
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
        seed_offset: int = 0,
        scale: float = 1.0,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """The event set as a stream of bounded ``(src, dst, time)``
        chunks — the out-of-core generation path.

        One sequential RNG drives the stream, so a fixed ``(seed_offset,
        scale, chunk_events)`` triple is fully deterministic; when a
        single chunk covers everything the stream is bitwise-identical
        to :meth:`generate`.  Feed to
        :class:`repro.graph.io.TemporalCSRBuilder` / :meth:`generate_tcsr`.
        """
        n_events, n_vertices = self._scaled_counts(scale)
        return generate_event_chunks(
            n_events=n_events,
            n_vertices=n_vertices,
            rate=self.rate_factory(),
            t_min=1_000_000_000,
            t_max=1_000_000_000 + self.span_seconds,
            seed=self.base_seed + seed_offset,
            endpoint_sampler=self._sampler(n_vertices),
            symmetric=self.symmetric,
            chunk_events=chunk_events,
        )

    def generate_tcsr(
        self,
        path,
        seed_offset: int = 0,
        scale: float = 1.0,
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
        n_workers: int = 4,
    ) -> str:
        """Generate straight to a ``.tcsr`` artifact on disk.

        Peak memory is O(``chunk_events``) regardless of total event
        count — the path the ``*-xl`` profiles (100x the base event
        count) are meant to take.
        """
        from repro.graph.io import build_tcsr

        _, n_vertices = self._scaled_counts(scale)
        return build_tcsr(
            self.iter_event_chunks(
                chunk_events=chunk_events,
                seed_offset=seed_offset,
                scale=scale,
            ),
            path,
            n_vertices,
            chunk_events=chunk_events,
            n_workers=n_workers,
        )

    def parameter_grid(self) -> List[Tuple[int, float]]:
        """All (sliding_offset_seconds, window_size_days) pairs of Table 1."""
        return [
            (sw, ws)
            for ws in self.window_sizes_days
            for sw in self.sliding_offsets
        ]


def _epinions_endpoints(n_events, n_vertices, rng):
    # ~40% users, 60% products
    n_left = max(2, int(n_vertices * 0.4))
    n_right = max(2, n_vertices - n_left)
    return bipartite_endpoints(n_events, n_left, n_right, rng)


PROFILES: Dict[str, DatasetProfile] = {
    "ca-cit-HepTh": DatasetProfile(
        name="ca-cit-HepTh",
        paper_events=2_673_133,
        n_events=40_000,
        n_vertices=1_200,
        span_seconds=8 * YEAR,
        sliding_offsets=(SW_12H, SW_1D, SW_2D),
        window_sizes_days=(10, 15, 90, 180, 730, 1460),
        rate_factory=irregular_rate,
        symmetric=True,
        figure4_shape="irregular bumps (Fig. 4c)",
        base_seed=101,
    ),
    "stackoverflow": DatasetProfile(
        name="stackoverflow",
        paper_events=47_903_266,
        n_events=80_000,
        n_vertices=2_000,
        span_seconds=7 * YEAR,
        sliding_offsets=(SW_12H, SW_1D),
        window_sizes_days=(10, 15, 90, 180, 730),
        rate_factory=lambda: growth_rate(exponent=2.2),
        figure4_shape="smooth growth (Fig. 4f)",
        base_seed=102,
    ),
    "askubuntu": DatasetProfile(
        name="askubuntu",
        paper_events=726_661,
        n_events=20_000,
        n_vertices=1_000,
        span_seconds=7 * YEAR,
        sliding_offsets=(SW_1D, SW_2D),
        window_sizes_days=(90, 180),
        rate_factory=lambda: growth_rate(exponent=1.6),
        figure4_shape="smooth growth (Fig. 4g)",
        base_seed=103,
    ),
    "youtube-growth": DatasetProfile(
        name="youtube-growth",
        paper_events=12_223_774,
        n_events=60_000,
        n_vertices=1_800,
        span_seconds=220 * DAY,
        sliding_offsets=(SW_12H, SW_1D),
        window_sizes_days=(60, 90),
        rate_factory=bursty_steady_rate,
        figure4_shape="bursty but steady (Fig. 4d)",
        base_seed=104,
    ),
    "epinions-user-ratings": DatasetProfile(
        name="epinions-user-ratings",
        paper_events=13_668_281,
        n_events=60_000,
        n_vertices=2_000,
        span_seconds=450 * DAY,
        sliding_offsets=(SW_12H, SW_1D),
        window_sizes_days=(60, 90),
        rate_factory=burst_decay_rate,
        endpoint_factory=_epinions_endpoints,
        figure4_shape="ramp + burst + decay, bipartite (Fig. 4b)",
        base_seed=105,
    ),
    "ia-enron-email": DatasetProfile(
        name="ia-enron-email",
        paper_events=1_134_990,
        n_events=30_000,
        n_vertices=800,
        span_seconds=10 * YEAR,
        sliding_offsets=(SW_1D, SW_2D),
        window_sizes_days=(730, 1460),
        rate_factory=spike_rate,
        figure4_shape="single dominant spike (Fig. 4a)",
        base_seed=106,
    ),
    "wiki-talk": DatasetProfile(
        name="wiki-talk",
        paper_events=6_100_538,
        n_events=60_000,
        n_vertices=1_500,
        span_seconds=6 * YEAR,
        sliding_offsets=(SW_12H, SW_1D, SW_2D, SW_3D),
        window_sizes_days=(10, 15, 90, 180),
        rate_factory=lambda: growth_rate(exponent=1.9),
        figure4_shape="smooth growth (Fig. 4e)",
        base_seed=107,
    ),
}


# ----------------------------------------------------------------------
# *-xl profiles: ~100x the base event count (10^6 - 10^7 events), with
# sqrt-scaled vertex counts — production-sized instances meant to be
# generated straight to disk via generate_tcsr(), not held in RAM.
# paper_events is unchanged: the xl instances approach (and for several
# datasets exceed) the real datasets' event counts.
# ----------------------------------------------------------------------
XL_SCALE = 100

PROFILES.update(
    {
        f"{profile.name}-xl": replace(
            profile,
            name=f"{profile.name}-xl",
            n_events=profile.n_events * XL_SCALE,
            n_vertices=profile.n_vertices * 10,
        )
        for profile in list(PROFILES.values())
    }
)


def get_profile(name: str) -> DatasetProfile:
    """Look up a profile by its paper name (case-insensitive)."""
    key = name.lower()
    for pname, profile in PROFILES.items():
        if pname.lower() == key:
            return profile
    raise DatasetError(
        f"unknown dataset profile {name!r}; known: {sorted(PROFILES)}"
    )


def list_profiles() -> List[str]:
    """Names of all available profiles, in Table 1 order."""
    return list(PROFILES)
