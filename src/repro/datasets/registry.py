"""A small caching registry for generated datasets.

Benchmarks re-use the same event sets across many configurations; the
registry memoizes generation (keyed by profile name, seed offset and scale)
and can optionally persist sets to ``.npz`` on disk so repeated benchmark
runs skip generation entirely.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.datasets.profiles import PROFILES, DatasetProfile, get_profile
from repro.events.event_set import TemporalEventSet
from repro.events.io import load_events_npz, save_events_npz

__all__ = ["DatasetRegistry", "default_registry"]


class DatasetRegistry:
    """Memoizing (and optionally disk-backed) dataset factory."""

    def __init__(self, cache_dir: Optional[os.PathLike] = None) -> None:
        self._memory: Dict[Tuple[str, int, float], TemporalEventSet] = {}
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self._cache_dir is not None:
            self._cache_dir.mkdir(parents=True, exist_ok=True)

    def get(
        self, name: str, seed_offset: int = 0, scale: float = 1.0
    ) -> TemporalEventSet:
        """Return the event set for profile ``name``, generating it at most
        once per (name, seed_offset, scale)."""
        key = (name, seed_offset, float(scale))
        if key in self._memory:
            return self._memory[key]

        events: Optional[TemporalEventSet] = None
        path = self._disk_path(key)
        if path is not None and path.exists():
            events = load_events_npz(path)
        if events is None:
            profile = get_profile(name)
            events = profile.generate(seed_offset=seed_offset, scale=scale)
            if path is not None:
                save_events_npz(events, path)
        self._memory[key] = events
        return events

    def profile(self, name: str) -> DatasetProfile:
        return get_profile(name)

    def names(self):
        return list(PROFILES)

    def clear(self) -> None:
        self._memory.clear()

    def _disk_path(self, key) -> Optional[Path]:
        if self._cache_dir is None:
            return None
        name, seed_offset, scale = key
        safe = name.replace("/", "_")
        return self._cache_dir / f"{safe}_s{seed_offset}_x{scale:g}.npz"


_DEFAULT: Optional[DatasetRegistry] = None


def default_registry() -> DatasetRegistry:
    """Process-wide registry (in-memory only)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = DatasetRegistry()
    return _DEFAULT
