"""A real work-stealing thread pool with per-worker deques.

Implements the TBB-style discipline the simulated machine models: each
worker owns a deque, pushes split-off subranges to its own bottom, pops
from its own bottom (LIFO, cache-friendly), and steals from the *top* of a
victim's deque (FIFO, steals the largest oldest range) when idle.  Ranges
larger than the granularity are split in half on pop; the worker keeps the
front half and leaves the back half stealable.

On CPython the GIL serializes Python-level execution, so this pool's value
on a single-core host is functional (correct results, correct scheduling
behaviour, observable steal counts) rather than wall-clock speedup — the
documented substitution that the discrete-event simulator complements.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SchedulerError, ValidationError

__all__ = ["WorkStealingPool", "PoolStats"]


@dataclass
class PoolStats:
    """Observable scheduling behaviour of one ``run`` call."""

    tasks_executed: int = 0
    steals: int = 0
    splits: int = 0
    per_worker_tasks: Dict[int, int] = field(default_factory=dict)


class WorkStealingPool:
    """Executes ``fn(lo, hi)`` over ``[0, n_items)`` with work stealing."""

    def __init__(self, n_workers: int = 4, granularity: int = 1) -> None:
        if n_workers <= 0:
            raise ValidationError("n_workers must be > 0")
        if granularity <= 0:
            raise ValidationError("granularity must be > 0")
        self.n_workers = n_workers
        self.granularity = granularity

    def run(
        self,
        fn: Callable[[int, int], object],
        n_items: int,
        collect: bool = True,
    ) -> Tuple[List[object], PoolStats]:
        """Execute ``fn`` over every granularity-sized leaf chunk.

        Returns (results in chunk order, scheduling stats).  ``fn`` must be
        thread-safe; exceptions propagate to the caller.
        """
        if n_items < 0:
            raise ValidationError("n_items must be >= 0")
        stats = PoolStats(per_worker_tasks={i: 0 for i in range(self.n_workers)})
        if n_items == 0:
            return [], stats

        deques: List[deque] = [deque() for _ in range(self.n_workers)]
        lock = threading.Lock()
        results: Dict[int, object] = {}
        errors: List[BaseException] = []
        remaining = [n_items]
        done = threading.Event()

        # deal initial contiguous ranges, one per worker
        base = n_items // self.n_workers
        extra = n_items % self.n_workers
        lo = 0
        for i in range(self.n_workers):
            hi = lo + base + (1 if i < extra else 0)
            if hi > lo:
                deques[i].append((lo, hi))
            lo = hi

        g = self.granularity

        def pop_own(i: int) -> Optional[Tuple[int, int]]:
            with lock:
                if deques[i]:
                    return deques[i].pop()
            return None

        def steal(i: int) -> Optional[Tuple[int, int]]:
            with lock:
                for j in range(self.n_workers):
                    v = (i + 1 + j) % self.n_workers
                    if v != i and deques[v]:
                        stats.steals += 1
                        return deques[v].popleft()
            return None

        def worker(i: int) -> None:
            while not done.is_set():
                rng = pop_own(i) or steal(i)
                if rng is None:
                    if done.is_set() or remaining[0] <= 0:
                        return
                    continue
                lo, hi = rng
                # split in half while bigger than the grainsize, keeping
                # the front and exposing the back half to thieves
                while hi - lo > g:
                    mid = (lo + hi) // 2
                    with lock:
                        deques[i].append((mid, hi))
                        stats.splits += 1
                    hi = mid
                try:
                    out = fn(lo, hi)
                except BaseException as exc:  # noqa: BLE001 - propagate
                    with lock:
                        errors.append(exc)
                    done.set()
                    return
                with lock:
                    if collect:
                        results[lo] = out
                    stats.tasks_executed += 1
                    stats.per_worker_tasks[i] += 1
                    remaining[0] -= hi - lo
                    if remaining[0] <= 0:
                        done.set()

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(self.n_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if errors:
            raise errors[0]
        if remaining[0] > 0:
            raise SchedulerError(
                f"pool finished with {remaining[0]} items unexecuted"
            )
        ordered = [results[k] for k in sorted(results)] if collect else []
        return ordered, stats
