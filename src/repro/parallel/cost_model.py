"""Calibrated task-cost model for the simulated parallel machine.

One PageRank power iteration over a multi-window graph structure costs (in
seconds):

    SpMV:  c_edge * nnz + c_vertex * V

    SpMM (k windows batched):
           c_edge * nnz                  -- one shared structure traversal
         + c_active * sum_active_edges   -- per-column useful edge math
         + c_vertex * V * k              -- per-column vertex updates

The SpMV/SpMM distinction encodes the paper's Section 4.4 argument: the
memory-bound structure stream is read **once** for all k columns, while the
per-column arithmetic streams through registers.  ``c_active`` (per active
edge per column) is cheaper than ``c_edge`` (per stored event, including
the random-access gather) by the ``spmm_column_discount`` ratio.  NumPy
kernels on this host cannot exhibit that locality win (each column is a
separate full-width array pass), so the ratio is a *modelling constant of
the simulated 48-core machine*, documented in DESIGN.md §2; all absolute
magnitudes (``c_edge``, ``c_vertex``, overheads) are fitted against real
measured kernel runs so 1-worker simulated time matches real serial
wall-clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "CostModel",
    "calibrate_cost_model",
    "choose_backend",
    "choose_edge_path",
    "default_cost_model",
    "DEFAULT_EXPECTED_ITERATIONS",
]

#: fraction of the per-stored-event cost charged per active edge per SpMM
#: column (the register-streamed part of the work).
SPMM_COLUMN_DISCOUNT = 0.5

#: one-time active-edge compaction pass, relative to the per-iteration
#: per-stored-event cost: a boolean compress + prefix sum streams the
#: structure about twice (read mask + write packed arrays), so the pack
#: costs roughly two masked iterations' worth of per-event work.
PACK_COST_RATIO = 2.0

#: iteration estimate used by the ``edge_path="auto"`` policy when the
#: caller has no history (first window of a chain): typical converged
#: counts at tolerance 1e-8 land in the 15-40 range, so 20 is
#: conservative without being timid.
DEFAULT_EXPECTED_ITERATIONS = 20

#: fraction of the per-edge cost a partition-centric (PCPM) traversal pays
#: once every partition's rank slice is cache resident: the reduction
#: streams a slice instead of scattering across the full vector.  Like
#: ``SPMM_COLUMN_DISCOUNT`` this is a modelling constant of the simulated
#: machine — the NumPy backend realises only part of it (smaller bincount
#: outputs), the numba backend most of it (fused gather+reduce loop).
PCPM_LOCALITY_DISCOUNT = 0.7

#: one-time destination-partition binning pass, relative to the per-edge
#: cost: a searchsorted over the (already destination-sorted) edge list
#: plus one modulo pass streams the structure about 1.5 times.
PCPM_BIN_COST_RATIO = 1.5


@dataclass(frozen=True)
class CostModel:
    """Per-operation costs in seconds (see module docstring)."""

    c_edge: float = 1.0e-8
    c_vertex: float = 1.0e-8
    c_active: float = 0.5e-8
    c_task: float = 7.5e-7
    c_region: float = 3.0e-6
    c_pack: float = PACK_COST_RATIO * 1.0e-8
    c_edge_local: float = PCPM_LOCALITY_DISCOUNT * 1.0e-8
    c_bin: float = PCPM_BIN_COST_RATIO * 1.0e-8
    c_partition: float = 5.0e-6

    def __post_init__(self) -> None:
        for name in (
            "c_edge", "c_vertex", "c_active", "c_task", "c_region",
            "c_pack", "c_edge_local", "c_bin", "c_partition",
        ):
            if getattr(self, name) < 0:
                raise ValidationError(f"{name} must be >= 0")

    # ------------------------------------------------------------------
    # SpMV
    # ------------------------------------------------------------------
    def spmv_iteration_cost(self, nnz: int, n_vertices: int) -> float:
        """One SpMV power iteration over a structure of ``nnz`` events."""
        return self.c_edge * nnz + self.c_vertex * n_vertices

    def spmv_window_cost(
        self, nnz: int, n_vertices: int, iterations: int
    ) -> float:
        """A full window solve (``iterations`` sequential SpMVs)."""
        return iterations * self.spmv_iteration_cost(nnz, n_vertices)

    # ------------------------------------------------------------------
    # SpMM
    # ------------------------------------------------------------------
    def spmm_iteration_cost(
        self, nnz: int, n_vertices: int, k: int, sum_active_edges: int
    ) -> float:
        """One batched iteration advancing ``k`` windows together;
        ``sum_active_edges`` is the total of the k windows' active edge
        counts."""
        return (
            self.c_edge * nnz
            + self.c_active * sum_active_edges
            + self.c_vertex * n_vertices * k
        )

    def spmm_window_cost(
        self,
        nnz: int,
        n_vertices: int,
        k: int,
        iterations: int,
        active_edges: int,
    ) -> float:
        """Amortized cost of one window solved inside a k-wide batch: the
        shared structure traversal is charged at 1/k."""
        k = max(k, 1)
        per_iter = (
            self.c_edge * nnz / k
            + self.c_active * active_edges
            + self.c_vertex * n_vertices
        )
        return iterations * per_iter

    # ------------------------------------------------------------------
    # active-edge compaction (repro.pagerank.compaction)
    # ------------------------------------------------------------------
    def pack_cost(self, nnz: int) -> float:
        """The one-time per-window compaction pass over ``nnz`` events."""
        return self.c_pack * nnz

    def choose_edge_path(
        self,
        nnz: int,
        n_active_edges: int,
        n_vertices: int,
        expected_iterations: int,
    ) -> str:
        """``"masked"`` or ``"compacted"``: whichever total is cheaper.

        Masked pays ``c_edge * nnz`` every iteration; compacted pays the
        pack once, then ``c_edge * |E_w|`` per iteration.  Compaction wins
        iff ``iters * (nnz - |E_w|) * c_edge > c_pack * nnz`` — i.e. the
        activity ratio is low enough, for long enough, to amortize the
        pack (the docs/tuning.md crossover).
        """
        if nnz <= 0 or n_active_edges >= nnz:
            return "masked"
        iters = max(int(expected_iterations), 1)
        masked = iters * self.spmv_iteration_cost(nnz, n_vertices)
        compacted = self.pack_cost(nnz) + iters * self.spmv_iteration_cost(
            n_active_edges, n_vertices
        )
        return "compacted" if compacted < masked else "masked"

    # ------------------------------------------------------------------
    # partition-centric backend (repro.pagerank.backends.pcpm)
    # ------------------------------------------------------------------
    def bin_cost(self, n_edges: int) -> float:
        """The one-time destination-partition binning of ``n_edges``."""
        return self.c_bin * n_edges

    def pcpm_iteration_cost(
        self,
        n_edges: int,
        n_vertices: int,
        n_partitions: int,
        fused: bool = True,
    ) -> float:
        """One partition-centric power iteration: locality-discounted edge
        work, the usual vertex update, plus a fixed per-partition dispatch
        overhead (slice bookkeeping, one reduce call per partition).

        The locality discount models the *fused* per-partition reduce —
        gather, mask, weight and accumulate in one cache-resident pass.
        Slice-at-a-time NumPy cannot realize it (each partition still
        gathers randomly across the full rank vector, measured on this
        host), so ``fused=False`` charges the undiscounted per-edge cost.
        """
        c_edge = self.c_edge_local if fused else self.c_edge
        return (
            c_edge * n_edges
            + self.c_vertex * n_vertices
            + self.c_partition * max(n_partitions, 1)
        )

    def choose_backend(
        self,
        n_edges: int,
        n_vertices: int,
        expected_iterations: int,
        cache_budget: int,
        fused: bool = True,
    ) -> str:
        """``"numpy"`` or ``"pcpm"``: whichever total is cheaper.

        ``n_edges`` is the number of edges actually traversed per
        iteration — i.e. *after* the ``edge_path`` decision (``nnz`` for
        masked, ``|E_w|`` for compacted), which is how the two knobs
        compose.  Partitioning cannot help when the whole rank vector
        already fits the cache budget, so that case short-circuits to
        ``"numpy"``; otherwise PCPM wins iff the per-iteration locality
        saving, over the expected iteration count, amortizes the one-time
        binning pass and the per-partition dispatch overhead.  With
        ``fused=False`` (no JIT available — the registry passes numba's
        availability here) there is no locality saving to amortize the
        binning, so the answer is always ``"numpy"``.
        """
        if n_edges <= 0 or n_vertices * 8 <= cache_budget:
            return "numpy"
        iters = max(int(expected_iterations), 1)
        width = max(1, int(cache_budget) // 8)
        n_partitions = -(-n_vertices // width)
        flat = iters * self.spmv_iteration_cost(n_edges, n_vertices)
        pcpm = self.bin_cost(n_edges) + iters * self.pcpm_iteration_cost(
            n_edges, n_vertices, n_partitions, fused=fused
        )
        return "pcpm" if pcpm < flat else "numpy"

    def with_overrides(self, **kwargs) -> "CostModel":
        return replace(self, **kwargs)


def default_cost_model() -> CostModel:
    """Deterministic constants of the right order of magnitude for the
    NumPy kernels on a modern x86 core; use :func:`calibrate_cost_model`
    for machine-accurate magnitudes."""
    return CostModel()


#: module-level model backing the stateless :func:`choose_edge_path`;
#: deterministic so the ``"auto"`` decision never varies run to run
_DEFAULT_MODEL = CostModel()


def choose_edge_path(
    nnz: int,
    n_active_edges: int,
    n_vertices: int,
    expected_iterations: int,
    model: CostModel = None,
) -> str:
    """Stateless entry point for the kernels' ``edge_path="auto"`` policy.

    Uses the deterministic default model unless a calibrated one is
    supplied: the decision depends only on *ratios* of same-unit costs,
    which the calibration barely moves.
    """
    model = model if model is not None else _DEFAULT_MODEL
    return model.choose_edge_path(
        nnz, n_active_edges, n_vertices, expected_iterations
    )


def choose_backend(
    n_edges: int,
    n_vertices: int,
    expected_iterations: int,
    cache_budget: int,
    model: CostModel = None,
    fused: bool = True,
) -> str:
    """Stateless entry point for the kernels' ``backend="auto"`` policy.

    Returns the cheaper *strategy* — ``"numpy"`` (flat full-width
    reduction) or ``"pcpm"`` (destination-partitioned reduction); the
    backend registry upgrades ``"pcpm"`` to the numba implementation when
    numba is importable, and passes ``fused=numba_available()`` so the
    locality discount is only priced in when the fused reduce exists.
    Deterministic default model unless a calibrated one is supplied,
    mirroring :func:`choose_edge_path`.
    """
    model = model if model is not None else _DEFAULT_MODEL
    return model.choose_backend(
        n_edges, n_vertices, expected_iterations, cache_budget, fused=fused
    )


def calibrate_cost_model(
    seed: int = 42,
    sizes=(6_000, 12_000, 24_000, 36_000),
    min_seconds: float = 0.003,
) -> CostModel:
    """Fit ``c_edge`` / ``c_vertex`` against real SpMV kernel timings.

    Builds temporal adjacencies of several sizes, times
    :func:`~repro.pagerank.spmv.pagerank_window` on a full-span window of
    each, and least-squares fits  time/iteration ≈ c_edge*nnz + c_vertex*V.
    ``c_active`` is then derived via the SpMM column discount (see module
    docstring), and the scheduling overheads from a dispatch
    micro-benchmark.
    """
    from repro.datasets.generators import generate_events, growth_rate
    from repro.events.windows import WindowSpec
    from repro.graph.temporal_csr import TemporalAdjacency
    from repro.pagerank.config import PagerankConfig
    from repro.pagerank.spmv import pagerank_window

    config = PagerankConfig(tolerance=1e-12, max_iterations=60)
    rows, times = [], []
    for n_events in sizes:
        events = generate_events(
            n_events=n_events,
            n_vertices=max(200, n_events // 10),
            rate=growth_rate(),
            t_min=0,
            t_max=10_000_000,
            seed=seed,
        )
        adjacency = TemporalAdjacency.from_events(events)
        spec = WindowSpec(
            t0=0, delta=10_000_000, sw=1, n_windows=1
        )
        view = adjacency.window_view(spec.window(0))
        result = pagerank_window(view, config)  # warm-up
        reps = 0
        t0 = time.perf_counter()
        while time.perf_counter() - t0 < min_seconds:
            result = pagerank_window(view, config)
            reps += 1
        elapsed = (time.perf_counter() - t0) / max(reps, 1)
        per_iter = elapsed / max(result.iterations, 1)
        rows.append([adjacency.nnz, adjacency.n_vertices])
        times.append(per_iter)

    A = np.asarray(rows, dtype=np.float64)
    b = np.asarray(times, dtype=np.float64)
    coef, *_ = np.linalg.lstsq(A, b, rcond=None)
    c_edge = float(max(coef[0], 1e-10))
    c_vertex = float(max(coef[1], 1e-10))

    # per-task dispatch overhead micro-benchmark: a no-op function call is
    # the floor of what a stolen task costs the runtime
    n_calls = 50_000
    noop = (lambda: None)
    t0 = time.perf_counter()
    for _ in range(n_calls):
        noop()
    c_task = max((time.perf_counter() - t0) / n_calls, 1e-8) * 10

    return CostModel(
        c_edge=c_edge,
        c_vertex=c_vertex,
        c_active=SPMM_COLUMN_DISCOUNT * c_edge,
        c_task=c_task,
        c_region=c_task * 4,
        c_pack=PACK_COST_RATIO * c_edge,
        c_edge_local=PCPM_LOCALITY_DISCOUNT * c_edge,
        c_bin=PCPM_BIN_COST_RATIO * c_edge,
        c_partition=c_task * 5,
    )
