"""Real (thread-based) chunked execution of window tasks.

On a multicore host with GIL-releasing kernels this provides genuine
window-level parallelism; chunks are *contiguous* runs of windows so a
worker that owns both G_{i-1} and G_i preserves the partial-initialization
chain (the paper's scheduling constraint, Section 4.3.1).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Sequence, Tuple, TypeVar

from repro.errors import ValidationError
from repro.parallel.partitioners import chunk_ranges, SIMPLE, Partitioner

__all__ = ["ChunkedThreadExecutor"]

T = TypeVar("T")


class ChunkedThreadExecutor:
    """Executes ``fn(lo, hi)`` over contiguous chunks of ``[0, n_items)``.

    ``fn`` receives a chunk's half-open range and returns a list of per-item
    results; results are reassembled in item order.
    """

    def __init__(
        self,
        n_workers: int = 4,
        granularity: int = 1,
        partitioner: Partitioner = SIMPLE,
    ) -> None:
        if n_workers <= 0:
            raise ValidationError("n_workers must be > 0")
        if granularity <= 0:
            raise ValidationError("granularity must be > 0")
        self.n_workers = n_workers
        self.granularity = granularity
        self.partitioner = partitioner

    def map_chunks(
        self, fn: Callable[[int, int], List[T]], n_items: int
    ) -> List[T]:
        """Run ``fn`` over every chunk; returns the concatenated per-item
        results in index order."""
        if n_items < 0:
            raise ValidationError("n_items must be >= 0")
        if n_items == 0:
            return []
        ranges = chunk_ranges(
            n_items, self.granularity, self.partitioner, self.n_workers
        )
        if len(ranges) == 1 or self.n_workers == 1:
            out: List[T] = []
            for lo, hi in ranges:
                out.extend(fn(lo, hi))
            return out

        with ThreadPoolExecutor(self.n_workers) as pool:
            futures = [pool.submit(fn, lo, hi) for lo, hi in ranges]
            out = []
            for fut in futures:
                out.extend(fut.result())
        return out
