"""Execution tracing for the simulated machine.

:func:`simulate_chunk_schedule_traced` mirrors
:func:`~repro.parallel.simulator.simulate_chunk_schedule` but records every
chunk's (worker, start, end) assignment, and :func:`format_gantt` renders
the trace as an ASCII Gantt chart — the view that makes load imbalance,
granularity starvation and static-partitioner pathologies visible at a
glance (the stories Figures 7–10 tell in aggregate).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import SchedulerError

__all__ = ["ChunkTrace", "simulate_chunk_schedule_traced", "format_gantt"]

TRACE_LIMIT = 100_000


@dataclass(frozen=True)
class ChunkTrace:
    """One executed chunk in the simulated schedule."""

    chunk: int
    worker: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def simulate_chunk_schedule_traced(
    chunk_costs: np.ndarray,
    n_workers: int,
    steals: bool = True,
    overhead_per_chunk: float = 0.0,
) -> tuple[float, List[ChunkTrace]]:
    """Exact traced simulation; returns ``(makespan, traces)``.

    Unlike the untraced variant there is no bound fallback — inputs above
    :data:`TRACE_LIMIT` chunks are rejected (a trace that large is
    unreadable anyway).
    """
    if n_workers <= 0:
        raise SchedulerError("n_workers must be > 0")
    costs = np.asarray(chunk_costs, dtype=np.float64)
    if costs.ndim != 1:
        raise SchedulerError("chunk costs must be 1-D")
    if costs.size > TRACE_LIMIT:
        raise SchedulerError(
            f"traced simulation capped at {TRACE_LIMIT} chunks"
        )
    if np.any(costs < 0):
        raise SchedulerError("chunk costs must be non-negative")
    costs = costs + overhead_per_chunk
    traces: List[ChunkTrace] = []

    if costs.size == 0:
        return 0.0, traces

    if not steals:
        # round-robin deal, each worker executes its chunks in order
        t_worker = np.zeros(n_workers)
        for i, c in enumerate(costs):
            w = i % n_workers
            traces.append(
                ChunkTrace(i, w, t_worker[w], t_worker[w] + float(c))
            )
            t_worker[w] += float(c)
        return float(t_worker.max()), traces

    heap = [(0.0, w) for w in range(n_workers)]
    heapq.heapify(heap)
    for i, c in enumerate(costs):
        t, w = heapq.heappop(heap)
        traces.append(ChunkTrace(i, w, t, t + float(c)))
        heapq.heappush(heap, (t + float(c), w))
    return max(t for t, _ in heap), traces


def format_gantt(
    traces: List[ChunkTrace],
    n_workers: int,
    width: int = 72,
    makespan: Optional[float] = None,
) -> str:
    """Render a trace as per-worker ASCII timelines.

    Busy time is drawn with alternating block characters per chunk so
    chunk boundaries are visible; idle time is blank.  The utilization
    percentage closes each row.
    """
    if not traces:
        return "(empty schedule)"
    span = makespan if makespan is not None else max(t.end for t in traces)
    if span <= 0:
        return "(zero-length schedule)"
    scale = width / span

    rows = []
    for w in range(n_workers):
        line = [" "] * width
        busy = 0.0
        for k, t in enumerate(x for x in traces if x.worker == w):
            busy += t.duration
            a = int(t.start * scale)
            b = max(int(t.end * scale), a + 1)
            ch = "#" if k % 2 == 0 else "="
            for i in range(a, min(b, width)):
                line[i] = ch
        util = 100.0 * busy / span
        rows.append(f"w{w:<3d}|{''.join(line)}| {util:5.1f}%")
    header = f"time 0 .. {span:.4g} ({len(traces)} chunks)"
    return "\n".join([header] + rows)
