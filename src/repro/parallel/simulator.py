"""Discrete-event simulation of a work-stealing parallel-for.

The machine model: ``P`` identical workers; a parallel region's chunks are
produced by a :class:`~repro.parallel.partitioners.Partitioner`; stealing
runtimes execute them greedily (an idle worker immediately acquires the
next pending chunk — the classic list-scheduling behaviour work stealing
converges to); a static runtime executes each worker's pre-dealt block with
no rebalancing.  Each chunk pays the cost model's per-task overhead and
each region a fixed setup cost.

For regions with very many chunks the exact event simulation is replaced
by the Graham bound ``W/P + (1 - 1/P) * c_max`` (plus overheads), which
list scheduling provably attains to within the bound — the regime where
the two are indistinguishable at figure resolution.
"""

from __future__ import annotations

import heapq
from typing import Optional, Sequence

import numpy as np

from repro.errors import SchedulerError
from repro.parallel.cost_model import CostModel
from repro.parallel.partitioners import (
    Partitioner,
    SIMPLE,
    chunk_ranges,
)

__all__ = [
    "simulate_chunk_schedule",
    "simulate_parallel_for",
    "EXACT_SIMULATION_LIMIT",
]

EXACT_SIMULATION_LIMIT = 60_000


def simulate_chunk_schedule(
    chunk_costs: np.ndarray,
    n_workers: int,
    steals: bool = True,
    overhead_per_chunk: float = 0.0,
) -> float:
    """Makespan of executing ``chunk_costs`` on ``P`` workers.

    ``steals=True`` — greedy list scheduling (exact event simulation up to
    :data:`EXACT_SIMULATION_LIMIT` chunks, Graham bound beyond).
    ``steals=False`` — chunks are dealt round-robin to workers up front and
    never move (the static partitioner's failure mode under imbalance).
    """
    if n_workers <= 0:
        raise SchedulerError("n_workers must be > 0")
    costs = np.asarray(chunk_costs, dtype=np.float64)
    if costs.ndim != 1:
        raise SchedulerError("chunk costs must be 1-D")
    if costs.size == 0:
        return 0.0
    if np.any(costs < 0):
        raise SchedulerError("chunk costs must be non-negative")
    costs = costs + overhead_per_chunk

    if not steals:
        # round-robin deal, no rebalancing: per-worker sums via strided view
        n = costs.size
        loads = np.zeros(n_workers)
        np.add.at(loads, np.arange(n) % n_workers, costs)
        return float(loads.max())

    if n_workers == 1:
        return float(costs.sum())

    if costs.size <= n_workers:
        return float(costs.max())

    if costs.size > EXACT_SIMULATION_LIMIT:
        total = float(costs.sum())
        cmax = float(costs.max())
        return total / n_workers + (1.0 - 1.0 / n_workers) * cmax

    # exact greedy list scheduling: earliest-free worker takes next chunk
    heap = [0.0] * n_workers
    heapq.heapify(heap)
    for c in costs:
        t = heapq.heappop(heap)
        heapq.heappush(heap, t + float(c))
    return max(heap)


def simulate_parallel_for(
    item_costs: np.ndarray,
    granularity: int,
    partitioner: Partitioner = SIMPLE,
    n_workers: int = 1,
    model: Optional[CostModel] = None,
) -> float:
    """Makespan of one ``parallel_for`` over items with per-item costs.

    The partitioner chunks ``[0, N)``; chunk costs are the sums of their
    items' costs; the schedule then runs per ``simulate_chunk_schedule``.
    """
    model = model or CostModel()
    items = np.asarray(item_costs, dtype=np.float64)
    if items.size == 0:
        return model.c_region

    ranges = chunk_ranges(
        items.size, granularity, partitioner, n_workers=n_workers
    )
    starts = np.array([lo for lo, _ in ranges], dtype=np.int64)
    cumulative = np.concatenate([[0.0], np.cumsum(items)])
    ends = np.array([hi for _, hi in ranges], dtype=np.int64)
    chunk_costs = cumulative[ends] - cumulative[starts]

    makespan = simulate_chunk_schedule(
        chunk_costs,
        n_workers,
        steals=partitioner.steals,
        overhead_per_chunk=model.c_task,
    )
    return makespan + model.c_region
