"""The parallel-execution substrate (paper Section 4.3).

The paper runs on 48 real cores under Intel TBB's work-stealing scheduler.
CPython's GIL (and this container's single core) make that unmeasurable
directly, so this package provides both:

* **Real executors** (:mod:`repro.parallel.executor`,
  :mod:`repro.parallel.workstealing`) — thread-based chunk execution with a
  work-stealing deque scheduler.  Functionally correct anywhere; actual
  scaling requires a multicore GIL-releasing host.
* **A shared-memory process backend** (:mod:`repro.parallel.shared_arena`)
  — multi-window graphs published once into ``multiprocessing``
  shared-memory arenas; worker processes attach by segment name (no array
  payload crosses the pickle boundary) and window results stream back to
  the parent through a queue-drained shuttle, so ``value_sink`` callbacks
  work under true process parallelism.
* **A simulated machine** (:mod:`repro.parallel.simulator`,
  :mod:`repro.parallel.levels`) — a discrete-event model of a P-core
  work-stealing runtime executing the *same task DAG* (window chunks /
  vertex-range chunks / nested) with task costs calibrated from real
  measured kernel runs (:mod:`repro.parallel.cost_model`).  This is the
  documented substitution that regenerates Figures 7–10.
"""

from repro.parallel.partitioners import (
    Partitioner,
    AUTO,
    SIMPLE,
    STATIC,
    chunk_ranges,
    contiguous_blocks,
)
from repro.parallel.cost_model import (
    CostModel,
    calibrate_cost_model,
    choose_backend,
    choose_edge_path,
    default_cost_model,
)
from repro.parallel.simulator import (
    simulate_parallel_for,
    simulate_chunk_schedule,
)
from repro.parallel.levels import (
    ParallelismLevel,
    MachineSpec,
    WindowStats,
    estimate_makespan,
    collect_window_stats,
)
from repro.parallel.tracing import (
    ChunkTrace,
    simulate_chunk_schedule_traced,
    format_gantt,
)
from repro.parallel.executor import ChunkedThreadExecutor
from repro.parallel.workstealing import WorkStealingPool
from repro.parallel.shared_arena import (
    ArenaHandle,
    SharedArena,
    SharedArenaRegistry,
    SharedGraphHandle,
    attach_arena,
    run_shared_tasks,
)

__all__ = [
    "ArenaHandle",
    "SharedArena",
    "SharedArenaRegistry",
    "SharedGraphHandle",
    "attach_arena",
    "run_shared_tasks",
    "Partitioner",
    "AUTO",
    "SIMPLE",
    "STATIC",
    "chunk_ranges",
    "contiguous_blocks",
    "CostModel",
    "calibrate_cost_model",
    "choose_backend",
    "choose_edge_path",
    "default_cost_model",
    "simulate_parallel_for",
    "simulate_chunk_schedule",
    "ParallelismLevel",
    "MachineSpec",
    "WindowStats",
    "estimate_makespan",
    "collect_window_stats",
    "ChunkTrace",
    "simulate_chunk_schedule_traced",
    "format_gantt",
    "ChunkedThreadExecutor",
    "WorkStealingPool",
]
