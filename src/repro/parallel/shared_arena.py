"""Zero-copy shared-memory publication of multi-window graphs.

The postmortem model's whole advantage is building the temporal CSR
**once**; the pickled ``executor="process"`` path gives that advantage
back by serializing every graph's ``indptr/col/time`` arrays into each
worker.  This module publishes the read-only structure arrays into
POSIX shared memory (``multiprocessing.shared_memory``) instead, so a
task submission carries only a few-hundred-byte *handle* — the segment
name plus an offset manifest — and workers reconstruct
:class:`~repro.graph.multiwindow.MultiWindowGraph` objects as zero-copy
views into the same physical pages.

Ownership model (see docs/architecture.md for the diagram):

* the **parent** process creates segments via :class:`SharedArenaRegistry`
  and is the only process that ever ``unlink``\\ s them — teardown runs in
  a ``finally`` (plus an ``atexit`` safety net), so segments are reclaimed
  after normal exit, driver exceptions, *and* killed workers;
* **workers** only attach.  A worker crash cannot leak ``/dev/shm``
  entries because attaching never creates one, and the per-process
  attachment cache keeps repeated tasks on the same segment free.

Results flow back through a queue drained by a parent-side thread, which
is what lets ``value_sink`` callbacks (e.g. a streaming
:class:`~repro.service.RankStoreWriter`) work under process execution:
workers put ``(window, values, meta)`` tuples, the drain thread invokes
the user callback in the parent.
"""

from __future__ import annotations

import atexit
import logging
import multiprocessing
import os
import pickle
import threading
import time
import uuid
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.events.windows import WindowSpec
from repro.graph.multiwindow import MultiWindowGraph
from repro.utils.arrays import file_backed_descriptor

__all__ = [
    "ArrayDesc",
    "ArenaHandle",
    "ArenaView",
    "FileArrayDesc",
    "MappedArenaHandle",
    "MappedArenaView",
    "SharedArena",
    "SharedArenaRegistry",
    "SharedGraphHandle",
    "attach_arena",
    "run_shared_tasks",
    "run_arena_tasks",
]

_LOG = logging.getLogger("repro.parallel.shared_arena")

#: byte alignment of every packed array (cache-line / SIMD friendly)
_ALIGNMENT = 64

#: /dev/shm name prefix of every segment this module creates — the
#: lifecycle tests grep for it to prove nothing leaks
ARENA_NAME_PREFIX = "repro_arena"

#: per-process cache of attached segments: segment name -> ArenaView
_ATTACH_CACHE: Dict[str, "ArenaView"] = {}

#: per-process cache of graphs rebuilt from arena views
_GRAPH_CACHE: Dict[Tuple[str, str], MultiWindowGraph] = {}

#: worker-process state installed by the pool initializer
_WORKER_STATE: Dict[str, object] = {}


def _aligned(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


@dataclass(frozen=True)
class ArrayDesc:
    """Location of one packed array inside a segment (picklable)."""

    key: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        n = np.dtype(self.dtype).itemsize
        for dim in self.shape:
            n *= dim
        return n


@dataclass(frozen=True)
class ArenaHandle:
    """Everything a worker needs to attach: name + manifest (picklable)."""

    segment: str
    manifest: Tuple[ArrayDesc, ...]

    def attach(self) -> "ArenaView":
        """Open the segment in this process (cached; see
        :func:`attach_arena`)."""
        return attach_arena(self)

    @property
    def keys(self) -> Tuple[str, ...]:
        return tuple(d.key for d in self.manifest)


class ArenaView:
    """An attached segment plus lazily-created read-only array views.

    Note on CPython's shared-memory resource tracker: attaching registers
    the segment name again (bpo-39959), but our workers are always
    children of the creating parent and therefore share its tracker
    process, where registration is idempotent by name — the parent's
    single ``unlink`` balances the books.  Explicitly unregistering
    attachments here would strip the parent's own registration from the
    shared tracker and make the eventual unlink error.
    """

    def __init__(self, handle: ArenaHandle) -> None:
        self._shm = shared_memory.SharedMemory(name=handle.segment)
        self._descs: Dict[str, ArrayDesc] = {
            d.key: d for d in handle.manifest
        }
        self._views: Dict[str, np.ndarray] = {}
        self.segment = handle.segment

    def shared_view(self, key: str) -> np.ndarray:
        """A read-only zero-copy view of one published array.

        The view aliases shared pages: it is valid only while this
        process's attachment is open, and callers that outlive the arena
        must copy.  Functions outside this module that hand such views
        onward are flagged by the ``mmap-escape`` lint rule unless they
        justify it.
        """
        arr = self._views.get(key)
        if arr is None:
            desc = self._descs.get(key)
            if desc is None:
                raise ValidationError(
                    f"segment {self.segment!r} has no array {key!r}"
                )
            arr = np.ndarray(
                desc.shape,
                dtype=np.dtype(desc.dtype),
                buffer=self._shm.buf,
                offset=desc.offset,
            )
            arr.flags.writeable = False
            self._views[key] = arr
        # the accessor itself is the one sanctioned zero-copy boundary
        # (documented contract above)
        # lint: disable=mmap-escape
        return arr

    def arrays(self, prefix: str = "") -> Dict[str, np.ndarray]:
        """All views whose key starts with ``prefix``, keys de-prefixed."""
        return {
            d.key[len(prefix):]: self.shared_view(d.key)
            for d in self._descs.values()
            if d.key.startswith(prefix)
        }

    def close(self) -> None:
        """Drop the views and this process's mapping (never unlinks)."""
        self._views.clear()
        _ATTACH_CACHE.pop(self.segment, None)
        stale = [k for k, g in _GRAPH_CACHE.items() if k[0] == self.segment]
        for k in stale:
            del _GRAPH_CACHE[k]
        try:
            self._shm.close()
        except BufferError as exc:
            # a caller still holds a view; the mapping lives until that
            # reference dies, but the segment itself is not leaked (only
            # the creator's unlink controls /dev/shm)
            _LOG.warning("arena %s close deferred: %s", self.segment, exc)


@dataclass(frozen=True)
class FileArrayDesc:
    """Location of one array inside a memory-mapped *file* (picklable).

    The out-of-core sibling of :class:`ArrayDesc`: instead of a shm
    segment offset it carries ``(path, byte offset)`` into an on-disk
    artifact (e.g. a ``.tcsr``), recovered by
    :func:`repro.utils.arrays.file_backed_descriptor`.
    """

    key: str
    dtype: str
    shape: Tuple[int, ...]
    path: str
    offset: int

    @property
    def nbytes(self) -> int:
        n = np.dtype(self.dtype).itemsize
        for dim in self.shape:
            n *= dim
        return n


@dataclass(frozen=True)
class MappedArenaHandle:
    """A zero-copy arena handle over file-backed arrays (picklable).

    No shared-memory segment exists: every worker ``mmap``\\ s the same
    file regions, so the kernel page cache is the shared medium and
    publication costs nothing regardless of array size.  Nothing to
    unlink either — reclamation is closing the per-process mappings.
    """

    segment: str
    manifest: Tuple[FileArrayDesc, ...]

    def attach(self) -> "MappedArenaView":
        return attach_arena(self)

    @property
    def keys(self) -> Tuple[str, ...]:
        return tuple(d.key for d in self.manifest)

    @property
    def nbytes(self) -> int:
        return sum(d.nbytes for d in self.manifest)


class MappedArenaView:
    """Per-process read-only mappings of a :class:`MappedArenaHandle`.

    Same access interface as :class:`ArenaView` (``shared_view`` /
    ``arrays`` / ``close``), so arena workers are agnostic to whether
    their arrays live in ``/dev/shm`` or in an on-disk artifact.
    """

    def __init__(self, handle: MappedArenaHandle) -> None:
        self._descs: Dict[str, FileArrayDesc] = {
            d.key: d for d in handle.manifest
        }
        self._views: Dict[str, np.ndarray] = {}
        self.segment = handle.segment

    def shared_view(self, key: str) -> np.ndarray:
        """A read-only view mapping the array's file region (cached)."""
        arr = self._views.get(key)
        if arr is None:
            desc = self._descs.get(key)
            if desc is None:
                raise ValidationError(
                    f"mapped arena {self.segment!r} has no array {key!r}"
                )
            if desc.nbytes == 0:
                arr = np.empty(desc.shape, dtype=np.dtype(desc.dtype))
                arr.flags.writeable = False
            else:
                arr = np.memmap(
                    desc.path,
                    dtype=np.dtype(desc.dtype),
                    mode="r",
                    offset=desc.offset,
                    shape=desc.shape,
                )
        self._views[key] = arr
        # the accessor itself is the one sanctioned zero-copy boundary
        # (same contract as ArenaView)
        # lint: disable=mmap-escape
        return arr

    def arrays(self, prefix: str = "") -> Dict[str, np.ndarray]:
        """All views whose key starts with ``prefix``, keys de-prefixed."""
        return {
            d.key[len(prefix):]: self.shared_view(d.key)
            for d in self._descs.values()
            if d.key.startswith(prefix)
        }

    def close(self) -> None:
        """Drop the views and close this process's file mappings."""
        views = dict(self._views)
        self._views.clear()
        _ATTACH_CACHE.pop(self.segment, None)
        stale = [k for k, g in _GRAPH_CACHE.items() if k[0] == self.segment]
        for k in stale:
            del _GRAPH_CACHE[k]
        for arr in views.values():
            mm = getattr(arr, "_mmap", None)
            if mm is not None:
                try:
                    mm.close()
                except BufferError as exc:
                    # a caller still holds a view; the read-only file
                    # mapping dies with that reference — nothing leaks
                    _LOG.warning(
                        "mapped arena %s close deferred: %s",
                        self.segment, exc,
                    )


def mapped_manifest(
    arrays: Dict[str, np.ndarray]
) -> Optional[Tuple[FileArrayDesc, ...]]:
    """File descriptors for ``arrays`` when *every* one is file-backed.

    Returns ``None`` (publish must copy into shm) as soon as any array
    is a plain heap array or a non-contiguous view.
    """
    descs: List[FileArrayDesc] = []
    for key, arr in arrays.items():
        located = file_backed_descriptor(arr)
        if located is None:
            return None
        path, offset = located
        descs.append(
            FileArrayDesc(
                key=key,
                dtype=arr.dtype.str,
                shape=tuple(arr.shape),
                path=path,
                offset=offset,
            )
        )
    return tuple(descs) if descs else None


def attach_arena(handle) -> "ArenaView | MappedArenaView":
    """Attach to a published arena, reusing this process's mapping.

    Dispatches on the handle type: shm-backed :class:`ArenaHandle` or
    file-backed :class:`MappedArenaHandle`.
    """
    view = _ATTACH_CACHE.get(handle.segment)
    if view is None:
        if isinstance(handle, MappedArenaHandle):
            view = MappedArenaView(handle)
        else:
            view = ArenaView(handle)
        _ATTACH_CACHE[handle.segment] = view
    return view


class SharedArena:
    """One shared-memory segment holding a set of packed arrays.

    Created (and eventually unlinked) by the parent process only; workers
    go through :class:`ArenaHandle`/:func:`attach_arena`.
    """

    def __init__(
        self, arrays: Dict[str, np.ndarray], name: Optional[str] = None
    ) -> None:
        descs: List[ArrayDesc] = []
        payload: List[np.ndarray] = []
        offset = 0
        for key, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            offset = _aligned(offset)
            descs.append(
                ArrayDesc(
                    key=key,
                    dtype=arr.dtype.str,
                    shape=tuple(arr.shape),
                    offset=offset,
                )
            )
            payload.append(arr)
            offset += arr.nbytes
        if name is None:
            name = (
                f"{ARENA_NAME_PREFIX}_{os.getpid()}_{uuid.uuid4().hex[:12]}"
            )
        self.name = name
        self.nbytes = offset
        self._shm = shared_memory.SharedMemory(
            create=True, name=name, size=max(offset, 1)
        )
        for desc, arr in zip(descs, payload):
            if arr.nbytes == 0:
                continue
            dst = np.ndarray(
                desc.shape,
                dtype=arr.dtype,
                buffer=self._shm.buf,
                offset=desc.offset,
            )
            dst[...] = arr
            del dst  # release the buffer export before any close()
        self.manifest: Tuple[ArrayDesc, ...] = tuple(descs)
        self._destroyed = False

    def handle(self) -> ArenaHandle:
        return ArenaHandle(segment=self.name, manifest=self.manifest)

    def destroy(self, unlink: bool = True) -> None:
        """Unlink (reclaim the /dev/shm entry) and close our mapping.

        Unlink happens *first*: even if a still-exported view keeps the
        local mapping alive, the named segment is gone and cannot leak.
        Idempotent.
        """
        if self._destroyed:
            return
        self._destroyed = True
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError as exc:
                _LOG.debug("arena %s already unlinked: %s", self.name, exc)
        view = _ATTACH_CACHE.get(self.name)
        if view is not None:
            view.close()
        try:
            self._shm.close()
        except BufferError as exc:
            _LOG.warning("arena %s close deferred: %s", self.name, exc)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedArena({self.name!r}, arrays={len(self.manifest)}, "
            f"bytes={self.nbytes})"
        )


@dataclass(frozen=True)
class SharedGraphHandle:
    """Picklable reference to one multi-window graph inside an arena.

    Carries only metadata — the arena handle, this graph's key prefix,
    its :class:`WindowSpec` and first window — never array payload; that
    is the property the pickle-size probe in the tests asserts.
    """

    arena: ArenaHandle
    prefix: str
    spec: WindowSpec
    first_window: int

    def materialize(self) -> MultiWindowGraph:
        """Rebuild the graph as zero-copy views (cached per process)."""
        key = (self.arena.segment, self.prefix)
        graph = _GRAPH_CACHE.get(key)
        if graph is None:
            view = attach_arena(self.arena)
            graph = MultiWindowGraph.from_shared_arrays(
                self.spec, self.first_window, view.arrays(self.prefix)
            )
            _GRAPH_CACHE[key] = graph
        return graph


class SharedArenaRegistry:
    """Owns every arena a run creates and guarantees reclamation.

    Use as a context manager (or call :meth:`close` in a ``finally``);
    an ``atexit`` hook is the last-resort net for interpreter exit with
    the registry still open.  Single-threaded by design: one registry
    belongs to one driver run in one thread.
    """

    def __init__(self) -> None:
        self._arenas: List[SharedArena] = []
        self._mapped: List[MappedArenaHandle] = []
        self._closed = False
        atexit.register(self.close)

    # ------------------------------------------------------------------
    def publish(self, arrays: Dict[str, np.ndarray]):
        """Publish ``arrays``; returns a picklable arena handle.

        When every array is already file-backed (mmap views of a
        ``.tcsr`` artifact), no shared-memory segment is created at all —
        the returned :class:`MappedArenaHandle` points workers at the
        same file regions, zero bytes copied.  Otherwise the arrays are
        packed into a fresh shm segment as before.
        """
        if self._closed:
            raise ValidationError("registry is closed")
        manifest = mapped_manifest(arrays)
        if manifest is not None:
            digest = uuid.uuid5(
                uuid.NAMESPACE_URL, repr(manifest)
            ).hex[:12]
            handle = MappedArenaHandle(
                segment=f"mapped_{digest}", manifest=manifest
            )
            self._mapped.append(handle)
            return handle
        arena = SharedArena(arrays)
        self._arenas.append(arena)
        return arena.handle()

    def publish_graphs(
        self, graphs: Sequence[MultiWindowGraph]
    ) -> List[SharedGraphHandle]:
        """Publish a partition's graphs into one segment.

        All graphs share a single segment (one create/unlink pair, one
        attach per worker); keys are namespaced ``g{i}/...``.
        """
        arrays: Dict[str, np.ndarray] = {}
        metas: List[Tuple[str, WindowSpec, int]] = []
        for gi, graph in enumerate(graphs):
            prefix = f"g{gi}/"
            for key, arr in graph.shared_arrays().items():
                arrays[prefix + key] = arr
            metas.append((prefix, graph.spec, graph.first_window))
        handle = self.publish(arrays)
        return [
            SharedGraphHandle(
                arena=handle, prefix=p, spec=s, first_window=fw
            )
            for p, s, fw in metas
        ]

    @property
    def total_bytes(self) -> int:
        """Bytes *copied* into shm segments (mapped arenas cost zero)."""
        return sum(a.nbytes for a in self._arenas)

    @property
    def mapped_bytes(self) -> int:
        """Bytes published as file mappings without copying."""
        return sum(h.nbytes for h in self._mapped)

    @property
    def segments(self) -> List[str]:
        return [a.name for a in self._arenas]

    def close(self, unlink: bool = True) -> None:
        """Destroy every arena (idempotent; safe from atexit)."""
        if self._closed:
            return
        self._closed = True
        for arena in self._arenas:
            arena.destroy(unlink=unlink)
        for handle in self._mapped:
            view = _ATTACH_CACHE.get(handle.segment)
            if view is not None:
                view.close()
        atexit.unregister(self.close)

    def __enter__(self) -> "SharedArenaRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# result shuttle: worker -> queue -> parent drain thread -> value_sink
# ----------------------------------------------------------------------
class _SinkDrain:
    """Parent-side thread that forwards queued window results to the
    user's ``value_sink`` callback."""

    def __init__(self, sink: Callable, ctx) -> None:
        self.queue = ctx.Queue()
        self._sink = sink
        self.error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._loop, name="arena-sink-drain", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def _loop(self) -> None:
        while True:
            item = self.queue.get()
            if item is None:
                return
            if self.error is not None:
                continue  # keep draining so workers never block, drop
            try:
                self._sink(*item)
            except BaseException as exc:  # surface via finish()
                self.error = exc

    def finish(self) -> Optional[BaseException]:
        """Stop the thread and report the first sink error (if any)."""
        self.queue.put(None)
        self._thread.join()
        return self.error


def _init_worker(sink_queue, worker, args) -> None:
    """Pool initializer: installs the per-run constants in the worker.

    The result queue, the worker callable, and the shared ``args`` tuple
    are identical for every task of a run, so they ride the initializer
    (pickled once per worker process) instead of every task submission —
    task payloads stay at "handle + index", which is what the
    zero-payload probe asserts.
    """
    _WORKER_STATE["sink_queue"] = sink_queue
    _WORKER_STATE["worker"] = worker
    _WORKER_STATE["args"] = args


def _worker_sink(window_index: int, values, meta) -> None:
    """The ``value_sink`` stand-in inside workers: ship, don't call."""
    queue = _WORKER_STATE.get("sink_queue")
    if queue is None:
        raise ValidationError(
            "worker has no sink queue (pool started without initializer)"
        )
    queue.put((window_index, values, meta))


def _run_task(handle: SharedGraphHandle, index: int):
    """Module-level task shim executed inside worker processes."""
    graph = handle.materialize()
    sink = _worker_sink if _WORKER_STATE.get("sink_queue") is not None else None
    return _WORKER_STATE["worker"](graph, index, sink, *_WORKER_STATE["args"])


def _run_arena_task(handle: ArenaHandle, payload, index: int):
    """Module-level task shim for :func:`run_arena_tasks` workers."""
    view = attach_arena(handle)
    sink = _worker_sink if _WORKER_STATE.get("sink_queue") is not None else None
    return _WORKER_STATE["worker"](
        view, payload, index, sink, *_WORKER_STATE["args"]
    )


def _pool_map(
    task_fn: Callable,
    payloads: Sequence[Tuple],
    worker: Callable,
    args: Tuple,
    n_workers: int,
    ctx,
    value_sink: Optional[Callable],
    stats: Dict[str, object],
):
    """Run pickled task tuples through a process pool, shuttling sink
    calls back to the parent.

    The shared core of :func:`run_shared_tasks` and
    :func:`run_arena_tasks`: sets up the drain thread when a sink is
    configured, records the pickled-payload-size probe in ``stats``,
    executes ``task_fn(*payload)`` per payload in submission order, and
    re-raises the first sink error after the pool winds down.  The caller
    owns arena publication and reclamation.

    ``worker`` and ``args`` are shipped once per worker process via the
    pool initializer, not per task — ``stats["init_bytes"]`` records that
    one-time cost, ``stats["payload_bytes"]`` the per-task traffic.
    """
    stats["payload_bytes"] = sum(
        len(pickle.dumps(p, protocol=pickle.HIGHEST_PROTOCOL))
        for p in payloads
    )
    stats["init_bytes"] = len(
        pickle.dumps((worker, args), protocol=pickle.HIGHEST_PROTOCOL)
    )
    stats["n_tasks"] = len(payloads)

    drain: Optional[_SinkDrain] = None
    if value_sink is not None:
        drain = _SinkDrain(value_sink, ctx)
        drain.start()
    initargs = (drain.queue if drain is not None else None, worker, args)

    try:
        with ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=initargs,
        ) as pool:
            futures = [pool.submit(task_fn, *p) for p in payloads]
            results = [f.result() for f in futures]
    finally:
        sink_error = drain.finish() if drain is not None else None
    if sink_error is not None:
        raise sink_error
    return results


def run_shared_tasks(
    graphs: Sequence[MultiWindowGraph],
    worker: Callable,
    args: Tuple = (),
    n_workers: int = 2,
    value_sink: Optional[Callable] = None,
    mp_context=None,
):
    """Execute ``worker(graph, index, sink, *args)`` per graph in a
    process pool attached to a shared-memory arena.

    ``worker`` must be a module-level callable (pickled by reference).
    ``value_sink(window, values, meta)``, when given, is invoked in the
    *parent* by a drain thread fed from a worker-side queue.

    Returns ``(results, stats)`` where ``results`` is per-graph worker
    return values in submission order and ``stats`` records the dispatch
    cost: pickled payload bytes per task (the probe the tests and the
    shared-memory benchmark assert on), arena bytes, and publish time.
    """
    if n_workers <= 0:
        raise ValidationError("n_workers must be > 0")
    ctx = mp_context if mp_context is not None else multiprocessing.get_context()
    registry = SharedArenaRegistry()
    stats: Dict[str, object] = {}
    try:
        t0 = time.perf_counter()
        handles = registry.publish_graphs(graphs)
        stats["publish_seconds"] = time.perf_counter() - t0
        stats["arena_bytes"] = registry.total_bytes
        stats["segments"] = list(registry.segments)

        task_payloads = [(h, i) for i, h in enumerate(handles)]
        results = _pool_map(
            _run_task, task_payloads, worker, tuple(args),
            n_workers, ctx, value_sink, stats,
        )
    finally:
        registry.close(unlink=True)
    return results, stats


def run_arena_tasks(
    arrays: Dict[str, np.ndarray],
    payloads: Sequence,
    worker: Callable,
    args: Tuple = (),
    n_workers: int = 2,
    value_sink: Optional[Callable] = None,
    mp_context=None,
):
    """Execute ``worker(view, payload, index, sink, *args)`` per payload
    in a process pool attached to one published segment of ``arrays``.

    The generic sibling of :func:`run_shared_tasks`: where that function
    is specialized to multi-window graphs, this one publishes an arbitrary
    dict of read-only arrays once and fans arbitrary (small, picklable)
    ``payloads`` out over it — e.g. the offline driver publishes the raw
    event log's ``src``/``dst``/``time`` columns and ships window-range
    payloads.  Workers receive the attached :class:`ArenaView` (cached per
    process) and must copy anything that outlives the task.

    Returns ``(results, stats)`` exactly like :func:`run_shared_tasks`.
    """
    if n_workers <= 0:
        raise ValidationError("n_workers must be > 0")
    ctx = mp_context if mp_context is not None else multiprocessing.get_context()
    registry = SharedArenaRegistry()
    stats: Dict[str, object] = {}
    try:
        t0 = time.perf_counter()
        handle = registry.publish(arrays)
        stats["publish_seconds"] = time.perf_counter() - t0
        stats["arena_bytes"] = registry.total_bytes
        stats["mapped_bytes"] = registry.mapped_bytes
        stats["segments"] = list(registry.segments)

        task_payloads = [(handle, p, i) for i, p in enumerate(payloads)]
        results = _pool_map(
            _run_arena_task, task_payloads, worker, tuple(args),
            n_workers, ctx, value_sink, stats,
        )
    finally:
        registry.close(unlink=True)
    return results, stats
