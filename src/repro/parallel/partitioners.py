"""TBB-style range partitioners (paper Section 6.3.2).

TBB's ``parallel_for`` over a range ``[0, N)`` with grainsize ``g`` behaves
differently per partitioner:

* ``simple_partitioner`` — recursively split all the way down to chunks of
  at most ``g`` items; every leaf is a stealable task.
* ``auto_partitioner`` — split adaptively: enough initial chunks to feed
  the workers (about 4 per worker), splitting further only when chunks get
  stolen, but never below ``g``.
* ``static_partitioner`` — deal contiguous blocks to workers up front, no
  stealing.

These helpers produce the concrete chunk boundaries each strategy creates;
both the real executors and the simulated machine consume them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "Partitioner",
    "AUTO",
    "SIMPLE",
    "STATIC",
    "chunk_ranges",
    "contiguous_blocks",
    "round_robin_owner",
]


@dataclass(frozen=True)
class Partitioner:
    """A named chunking strategy.

    ``initial_split_factor`` — how many chunks per worker the strategy
    creates before any stealing (TBB's auto starts near 4 per worker).
    ``steals`` — whether idle workers may steal.
    """

    name: str
    steals: bool
    initial_split_factor: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Partitioner({self.name})"


AUTO = Partitioner(name="auto", steals=True, initial_split_factor=4)
SIMPLE = Partitioner(name="simple", steals=True, initial_split_factor=0)
STATIC = Partitioner(name="static", steals=False, initial_split_factor=1)

_BY_NAME = {p.name: p for p in (AUTO, SIMPLE, STATIC)}


def get_partitioner(name: str) -> Partitioner:
    """Look a partitioner up by name (``auto`` / ``simple`` / ``static``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValidationError(
            f"unknown partitioner {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def chunk_ranges(
    n_items: int,
    granularity: int,
    partitioner: Partitioner = SIMPLE,
    n_workers: int = 1,
) -> List[Tuple[int, int]]:
    """Chunk boundaries ``[(lo, hi), ...]`` a partitioner produces over
    ``[0, n_items)``.

    * simple: chunks of exactly ``granularity`` (last one smaller);
    * auto: chunk size ``max(granularity, ceil(N / (factor * P)))`` —
      adaptive splitting modelled at its steady state;
    * static: ``min(P, ceil(N / granularity))`` contiguous blocks.
    """
    if n_items < 0:
        raise ValidationError("n_items must be >= 0")
    if granularity <= 0:
        raise ValidationError("granularity must be > 0")
    if n_workers <= 0:
        raise ValidationError("n_workers must be > 0")
    if n_items == 0:
        return []

    if partitioner.name == "simple":
        size = granularity
    elif partitioner.name == "auto":
        target = -(-n_items // (partitioner.initial_split_factor * n_workers))
        size = max(granularity, target)
    elif partitioner.name == "static":
        blocks = min(n_workers, -(-n_items // granularity))
        return contiguous_blocks(n_items, max(blocks, 1))
    else:  # pragma: no cover - defensive
        raise ValidationError(f"unknown partitioner {partitioner.name!r}")

    bounds = list(range(0, n_items, size)) + [n_items]
    return [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]


def contiguous_blocks(n_items: int, n_blocks: int) -> List[Tuple[int, int]]:
    """Split ``[0, n_items)`` into ``n_blocks`` near-equal contiguous
    blocks (the first ``n_items % n_blocks`` get one extra)."""
    if n_blocks <= 0:
        raise ValidationError("n_blocks must be > 0")
    n_blocks = min(n_blocks, n_items) or 1
    base = n_items // n_blocks
    extra = n_items % n_blocks
    out = []
    lo = 0
    for b in range(n_blocks):
        hi = lo + base + (1 if b < extra else 0)
        out.append((lo, hi))
        lo = hi
    return out


def round_robin_owner(n_chunks: int, n_workers: int) -> np.ndarray:
    """Static round-robin chunk → worker assignment."""
    if n_workers <= 0:
        raise ValidationError("n_workers must be > 0")
    return np.arange(n_chunks, dtype=np.int64) % n_workers
