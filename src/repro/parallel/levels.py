"""Makespan estimation for the three parallelization levels (Section 4.3).

Given *measured* per-window statistics from a real serial postmortem run
(iteration counts with and without partial initialization, structure sizes,
per-vertex row lengths), these estimators replay the work under the
simulated P-core machine for:

* **window-level** — windows grouped into granularity-sized contiguous
  chunks; partial initialization survives only inside a chunk (the paper's
  "same thread processes G_{i-1} and G_i" rule);
* **application (PR)-level** — windows strictly in order, each window's
  vertex loop parallelized; partial init everywhere except each
  multi-window graph's first window;
* **nested** — both, bounded by ``max(total_work / P, longest window
  critical path)`` which greedy work stealing attains up to overheads.

Both SpMV and SpMM kernels are supported; SpMM amortizes the structure
traversal over its batch width and (per Section 4.4's region schedule)
keeps partial initialization for all but the first batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.parallel.cost_model import CostModel
from repro.parallel.partitioners import Partitioner, SIMPLE, chunk_ranges
from repro.parallel.simulator import (
    simulate_chunk_schedule,
    simulate_parallel_for,
)
from repro.utils.segments import row_lengths as _row_lengths

__all__ = [
    "ParallelismLevel",
    "MachineSpec",
    "WindowStats",
    "MultiWindowStats",
    "PostmortemStats",
    "collect_window_stats",
    "estimate_makespan",
]

ParallelismLevel = str  # "window" | "application" | "nested"
_LEVELS = ("window", "application", "nested")
_KERNELS = ("spmv", "spmm")


@dataclass(frozen=True)
class MachineSpec:
    """The simulated target machine (paper: 2 × 24-core Cascade Lake)."""

    n_workers: int = 48
    name: str = "2x Xeon Gold 6248R (simulated)"

    def __post_init__(self) -> None:
        if self.n_workers <= 0:
            raise ValidationError("n_workers must be > 0")


@dataclass
class WindowStats:
    """Measured statistics of one window's solve."""

    window: int
    mw_index: int
    iterations_partial: int
    iterations_full: int
    active_edges: int
    active_vertices: int


@dataclass
class MultiWindowStats:
    """Structure statistics of one multi-window graph."""

    index: int
    first_window: int
    n_windows: int
    nnz: int
    n_vertices: int
    in_row_lengths: np.ndarray


@dataclass
class PostmortemStats:
    """Everything the makespan estimators consume."""

    n_windows: int
    multiwindows: List[MultiWindowStats]
    windows: List[WindowStats]
    build_seconds: float = 0.0

    def windows_of(self, mw_index: int) -> List[WindowStats]:
        return [w for w in self.windows if w.mw_index == mw_index]


def collect_window_stats(
    events,
    spec,
    config=None,
    n_multiwindows: int = 6,
) -> PostmortemStats:
    """Run the real postmortem solver twice (partial / full initialization)
    and package the measured statistics for the simulator."""
    from repro.models.postmortem import PostmortemDriver, PostmortemOptions
    from repro.pagerank.config import PagerankConfig

    config = config or PagerankConfig()
    drv_partial = PostmortemDriver(
        events,
        spec,
        config,
        PostmortemOptions(n_multiwindows=n_multiwindows, partial_init=True),
    )
    run_partial = drv_partial.run(store_values=False)
    drv_full = PostmortemDriver(
        events,
        spec,
        config,
        PostmortemOptions(n_multiwindows=n_multiwindows, partial_init=False),
    )
    run_full = drv_full.run(store_values=False)

    partition = drv_partial.partition
    mw_stats = [
        MultiWindowStats(
            index=i,
            first_window=g.first_window,
            n_windows=g.n_windows,
            nnz=g.nnz,
            n_vertices=g.n_local_vertices,
            in_row_lengths=_row_lengths(g.adjacency.in_csr.indptr),
        )
        for i, g in enumerate(partition.graphs)
    ]
    owner = {w: partition.owner_of(w) for w in range(spec.n_windows)}
    w_stats = [
        WindowStats(
            window=wp.window_index,
            mw_index=owner[wp.window_index],
            iterations_partial=wp.iterations,
            iterations_full=wf.iterations,
            active_edges=wp.n_active_edges,
            active_vertices=wp.n_active_vertices,
        )
        for wp, wf in zip(run_partial.windows, run_full.windows)
    ]
    return PostmortemStats(
        n_windows=spec.n_windows,
        multiwindows=mw_stats,
        windows=w_stats,
        build_seconds=run_partial.timings.totals.get("build", 0.0),
    )


# ----------------------------------------------------------------------
# per-window serial costs and vertex-loop item costs
# ----------------------------------------------------------------------

def _effective_k(vector_length: int, mw: MultiWindowStats) -> int:
    return max(1, min(vector_length, mw.n_windows))


def _window_serial_cost(
    w: WindowStats,
    mw: MultiWindowStats,
    model: CostModel,
    kernel: str,
    vector_length: int,
    full_init: bool,
) -> float:
    iters = w.iterations_full if full_init else w.iterations_partial
    if kernel == "spmv":
        return model.spmv_window_cost(mw.nnz, mw.n_vertices, iters)
    return model.spmm_window_cost(
        mw.nnz,
        mw.n_vertices,
        _effective_k(vector_length, mw),
        iters,
        w.active_edges,
    )


def _vertex_item_costs(
    stats: PostmortemStats,
    mw: MultiWindowStats,
    model: CostModel,
    kernel: str,
    vector_length: int,
) -> np.ndarray:
    """Per-local-vertex cost of one vertex-loop iteration over ``mw``."""
    if kernel == "spmv":
        return model.c_edge * mw.in_row_lengths + model.c_vertex
    k = _effective_k(vector_length, mw)
    wins = stats.windows_of(mw.index)
    phi = (
        float(np.mean([w.active_edges for w in wins])) / max(mw.nnz, 1)
        if wins
        else 1.0
    )
    return (
        model.c_edge * mw.in_row_lengths
        + model.c_active * mw.in_row_lengths * phi * k
        + model.c_vertex * k
    )


def _chunk_head_mask(
    n_windows: int,
    granularity: int,
    mw_firsts: Sequence[int],
) -> np.ndarray:
    """Which windows lose partial initialization under window-level
    chunking: the first window of each granularity-chunk, and the first
    window of each multi-window graph (its predecessor lives in a different
    index space)."""
    heads = np.zeros(n_windows, dtype=bool)
    heads[::granularity] = True
    for f in mw_firsts:
        heads[f] = True
    return heads


def _chunk_costs(
    item_costs: np.ndarray,
    granularity: int,
    partitioner: Partitioner,
    n_workers: int,
) -> np.ndarray:
    ranges = chunk_ranges(item_costs.size, granularity, partitioner, n_workers)
    csum = np.concatenate([[0.0], np.cumsum(item_costs)])
    lo = np.array([a for a, _ in ranges], dtype=np.int64)
    hi = np.array([b for _, b in ranges], dtype=np.int64)
    return csum[hi] - csum[lo]


# ----------------------------------------------------------------------
# level estimators
# ----------------------------------------------------------------------

def _estimate_window_level(
    stats: PostmortemStats,
    machine: MachineSpec,
    model: CostModel,
    partitioner: Partitioner,
    granularity: int,
    kernel: str,
    vector_length: int,
) -> float:
    mw_by_index = {m.index: m for m in stats.multiwindows}
    mw_firsts = [m.first_window for m in stats.multiwindows]
    heads = _chunk_head_mask(stats.n_windows, granularity, mw_firsts)

    costs = np.empty(stats.n_windows, dtype=np.float64)
    for w in stats.windows:
        costs[w.window] = _window_serial_cost(
            w,
            mw_by_index[w.mw_index],
            model,
            kernel,
            vector_length,
            full_init=bool(heads[w.window]),
        )
    return simulate_parallel_for(
        costs, granularity, partitioner, machine.n_workers, model
    )


def _estimate_application_level(
    stats: PostmortemStats,
    machine: MachineSpec,
    model: CostModel,
    partitioner: Partitioner,
    granularity: int,
    kernel: str,
    vector_length: int,
) -> float:
    # one vertex-loop region makespan per multi-window graph (identical
    # across that graph's windows: the structure is shared)
    regions: Dict[int, float] = {}
    for m in stats.multiwindows:
        item_costs = _vertex_item_costs(
            stats, m, model, kernel, vector_length
        )
        regions[m.index] = simulate_parallel_for(
            item_costs, granularity, partitioner, machine.n_workers, model
        )

    mw_firsts = {m.first_window for m in stats.multiwindows}
    total = 0.0
    if kernel == "spmv":
        for w in stats.windows:
            iters = (
                w.iterations_full
                if w.window in mw_firsts
                else w.iterations_partial
            )
            total += iters * regions[w.mw_index]
    else:
        # the region schedule batches k windows per pass; one batched
        # region advances all k columns, so a batch pays the max of its
        # columns' iteration counts (converged columns ride along).
        from repro.models.schedule import spmm_region_schedule

        for m in stats.multiwindows:
            wmap = {w.window: w for w in stats.windows_of(m.index)}
            batches = spmm_region_schedule(
                m.first_window, m.n_windows, vector_length
            )
            for batch in batches:
                iters = 0
                for w_idx, pred in zip(batch.windows, batch.predecessors):
                    w = wmap[w_idx]
                    iters = max(
                        iters,
                        w.iterations_full
                        if pred is None
                        else w.iterations_partial,
                    )
                total += iters * regions[m.index]
    return total


def _estimate_nested(
    stats: PostmortemStats,
    machine: MachineSpec,
    model: CostModel,
    partitioner: Partitioner,
    granularity: int,
    kernel: str,
    vector_length: int,
) -> float:
    mw_by_index = {m.index: m for m in stats.multiwindows}
    mw_firsts = {m.first_window for m in stats.multiwindows}

    # per-graph inner-loop chunking under this partitioner
    max_chunk: Dict[int, float] = {}
    n_chunks: Dict[int, int] = {}
    for m in stats.multiwindows:
        item_costs = _vertex_item_costs(
            stats, m, model, kernel, vector_length
        )
        ccosts = _chunk_costs(
            item_costs, granularity, partitioner, machine.n_workers
        )
        max_chunk[m.index] = float(ccosts.max()) if ccosts.size else 0.0
        n_chunks[m.index] = max(len(ccosts), 1)

    serial_costs = np.empty(stats.n_windows, dtype=np.float64)
    critical = np.empty(stats.n_windows, dtype=np.float64)
    total_chunks = 0.0
    for w in stats.windows:
        m = mw_by_index[w.mw_index]
        full = w.window in mw_firsts
        iters = w.iterations_full if full else w.iterations_partial
        serial_costs[w.window] = _window_serial_cost(
            w, m, model, kernel, vector_length, full_init=full
        )
        total_chunks += iters * n_chunks[m.index]
        critical[w.window] = iters * (max_chunk[m.index] + model.c_region)

    if not partitioner.steals:
        # no rebalancing: every worker executes a statically-dealt
        # *contiguous* block of windows (TBB static_partitioner semantics);
        # with time-skewed loads the block holding the heavy windows
        # dominates the makespan
        from repro.parallel.partitioners import contiguous_blocks

        blocks = contiguous_blocks(stats.n_windows, machine.n_workers)
        csum = np.concatenate([[0.0], np.cumsum(serial_costs)])
        block_costs = [csum[hi] - csum[lo] for lo, hi in blocks]
        return max(block_costs) + model.c_task * len(blocks) + model.c_region

    total_work = float(serial_costs.sum())
    overhead = model.c_task * total_chunks / machine.n_workers
    lower = total_work / machine.n_workers + overhead
    return max(lower, float(critical.max())) + model.c_region


def estimate_makespan(
    stats: PostmortemStats,
    machine: MachineSpec = MachineSpec(),
    model: Optional[CostModel] = None,
    level: ParallelismLevel = "nested",
    partitioner: Partitioner = SIMPLE,
    granularity: int = 1,
    kernel: str = "spmv",
    vector_length: int = 16,
) -> float:
    """Simulated wall-clock (seconds) of the postmortem computation under
    the requested parallel configuration — the quantity Figures 7–10 sweep.

    Includes the (real, measured) one-time representation build time.
    """
    if level not in _LEVELS:
        raise ValidationError(f"level must be one of {_LEVELS}, got {level!r}")
    if kernel not in _KERNELS:
        raise ValidationError(
            f"kernel must be one of {_KERNELS}, got {kernel!r}"
        )
    if granularity <= 0:
        raise ValidationError("granularity must be > 0")
    model = model or CostModel()

    if level == "window":
        compute = _estimate_window_level(
            stats, machine, model, partitioner, granularity, kernel,
            vector_length,
        )
    elif level == "application":
        compute = _estimate_application_level(
            stats, machine, model, partitioner, granularity, kernel,
            vector_length,
        )
    else:
        compute = _estimate_nested(
            stats, machine, model, partitioner, granularity, kernel,
            vector_length,
        )
    return compute + stats.build_seconds
