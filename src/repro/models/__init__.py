"""The three execution models of Algorithm 1 (paper Section 3.3).

Every driver computes the same sequence of PageRank vectors — one per
window — and returns a :class:`~repro.models.base.RunResult` with per-phase
timings so benchmarks can compare build vs. compute costs across models.
"""

from repro.models.base import RunResult, WindowResult
from repro.models.offline import OfflineDriver
from repro.models.results_io import save_run, load_run
from repro.models.postmortem import PostmortemDriver, PostmortemOptions

__all__ = [
    "RunResult",
    "WindowResult",
    "OfflineDriver",
    "PostmortemDriver",
    "PostmortemOptions",
    "save_run",
    "load_run",
]
