"""The postmortem execution model — the paper's contribution.

The driver builds the multi-window temporal-CSR representation **once**
(Section 4.1), then solves every window with:

* partial initialization across consecutive windows (Section 4.2),
* the SpMV kernel or the SpMM-inspired batched kernel with the strided
  region schedule (Section 4.4),
* optionally, real thread-based parallelism over windows in *contiguous
  chunks*, so a thread that owns both G_{i-1} and G_i still applies partial
  initialization (Section 4.3.1's scheduling constraint).

The driver also records a machine-independent *task log* (per-window and
per-batch work counters) that the discrete-event machine simulator
(:mod:`repro.parallel.simulator`) replays to estimate multicore speedups —
the documented substitution for the paper's 48-core TBB runs.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ValidationError
from repro.events.event_set import TemporalEventSet
from repro.events.windows import WindowSpec
from repro.graph.multiwindow import MultiWindowGraph, MultiWindowPartition
from repro.models.base import RunResult, WindowResult
from repro.models.schedule import (
    SpmmBatch,
    sequential_schedule,
    spmm_region_schedule,
)
from repro.pagerank.config import PagerankConfig
from repro.pagerank.init import full_initialization, partial_initialization
from repro.pagerank.spmm import pagerank_windows_spmm
from repro.pagerank.spmv import pagerank_window
from repro.pagerank.weighted import pagerank_window_weighted
from repro.runtime.base import record_run_metadata
from repro.runtime.context import DriverContext
from repro.runtime.sinks import chain_sinks

__all__ = ["PostmortemOptions", "PostmortemDriver", "solve_multiwindow_graph"]

_KERNELS = ("spmv", "spmm")
_EXECUTORS = ("serial", "thread", "process", "shared")


@dataclass(frozen=True)
class PostmortemOptions:
    """Tuning knobs of the postmortem model.

    Attributes
    ----------
    n_multiwindows:
        Number of multi-window graphs Y (paper default in Figure 5: 6).
    partial_init:
        Warm-start each window from its predecessor (within the same
        multi-window graph).
    kernel:
        ``"spmv"`` (one window at a time) or ``"spmm"`` (batched windows
        with the region schedule).
    vector_length:
        SpMM batch width (the paper uses 8 or 16).
    executor:
        ``"serial"``, ``"thread"`` (threads over multi-window graphs;
        scales only when kernels release the GIL), ``"process"``
        (process pool over multi-window graphs; true parallelism on any
        CPython at the cost of pickling each graph to its worker) or
        ``"shared"`` (process pool attached to a shared-memory arena:
        graphs are published once via
        :mod:`repro.parallel.shared_arena`, workers receive only
        segment-name handles — no array payload crosses the pickle
        boundary — and ``value_sink`` callbacks run in the parent, fed
        by a result shuttle).
    n_threads:
        Worker count for the ``"thread"``, ``"process"`` and
        ``"shared"`` executors.
    partition_method:
        ``"uniform"`` (the paper's equal-window-count split),
        ``"minimax"`` or ``"greedy"`` (the work-balanced splits of
        :mod:`repro.graph.balanced` — the paper's Section 7 open
        question).
    weighted:
        Weight window edges by their event multiplicity
        (:mod:`repro.pagerank.weighted`); requires the SpMV kernel.
    """

    n_multiwindows: int = 6
    partial_init: bool = True
    kernel: str = "spmv"
    vector_length: int = 16
    executor: str = "serial"
    n_threads: int = 4
    partition_method: str = "uniform"
    weighted: bool = False

    def __post_init__(self) -> None:
        if self.n_multiwindows <= 0:
            raise ValidationError("n_multiwindows must be > 0")
        if self.kernel not in _KERNELS:
            raise ValidationError(f"kernel must be one of {_KERNELS}")
        if self.vector_length <= 0:
            raise ValidationError("vector_length must be > 0")
        if self.executor not in _EXECUTORS:
            raise ValidationError(f"executor must be one of {_EXECUTORS}")
        if self.n_threads <= 0:
            raise ValidationError("n_threads must be > 0")
        if self.partition_method not in ("uniform", "minimax", "greedy"):
            raise ValidationError(
                "partition_method must be 'uniform', 'minimax' or 'greedy'"
            )
        if self.weighted and self.kernel != "spmv":
            raise ValidationError(
                "weighted PageRank requires kernel='spmv'"
            )


@dataclass
class TaskRecord:
    """Machine-independent record of one solved task (window or SpMM
    batch), consumed by the parallel machine simulator."""

    multiwindow: int
    windows: List[int]
    iterations: int
    structure_nnz: int
    active_edges: int
    active_vertices: int
    used_partial_init: bool
    kernel: str


class PostmortemDriver:
    """Runs Algorithm 1 under the postmortem model."""

    model_name = "postmortem"
    supported_executors = _EXECUTORS

    def __init__(
        self,
        events: TemporalEventSet,
        spec: WindowSpec,
        config: PagerankConfig = PagerankConfig(),
        options: PostmortemOptions = PostmortemOptions(),
        *,
        context: Optional[DriverContext] = None,
    ) -> None:
        self.events = events
        self.spec = spec
        self.options = options
        # executor authority stays with PostmortemOptions (the model's
        # tuning surface); the context contributes sinks, hooks and the
        # runtime edge-path override
        self.context = (
            context if context is not None else DriverContext()
        ).with_execution(options.executor, options.n_threads)
        if self.context.edge_path is not None:
            config = replace(config, edge_path=self.context.edge_path)
        if self.context.backend is not None:
            config = replace(config, backend=self.context.backend)
        self.config = config
        self._partition: Optional[MultiWindowPartition] = None

    # ------------------------------------------------------------------
    @property
    def partition(self) -> MultiWindowPartition:
        """The multi-window representation (built lazily, once)."""
        if self._partition is None:
            if self.options.partition_method == "uniform":
                self._partition = MultiWindowPartition(
                    self.events, self.spec, self.options.n_multiwindows
                )
            else:
                from repro.graph.balanced import BalancedMultiWindowPartition

                self._partition = BalancedMultiWindowPartition(
                    self.events,
                    self.spec,
                    self.options.n_multiwindows,
                    method=self.options.partition_method,
                )
        return self._partition

    def run(
        self,
        store_values: bool = True,
        value_sink=None,
        *,
        progress=None,
    ) -> RunResult:
        """Solve every window; ``store_values=False`` keeps only per-window
        summaries (benchmark mode).

        ``value_sink`` is an optional callback ``sink(window_index, values,
        meta)`` invoked with each window's *global* rank vector the moment
        it is solved — e.g. ``RankStoreWriter.write_window`` to stream a
        servable rank store to disk (chained after any context-level
        sink).  Combined with ``store_values=False`` a run persists every
        vector while holding only one in memory at a time.  The sink may
        be called concurrently under the ``"thread"`` executor (rank-store
        writers lock internally); the ``"process"`` executor cannot ship a
        callback to its workers — use ``executor="shared"``, whose result
        shuttle invokes the sink in the parent process.

        ``progress(graphs_done, graphs_total)`` reports at multi-window
        graph granularity — the model's unit of parallel work.
        """
        ctx = self.context
        executor = ctx.executor
        sink = chain_sinks(ctx.value_sink, value_sink)
        progress = progress if progress is not None else ctx.progress
        if sink is not None and executor == "process":
            raise ValidationError(
                "value_sink is not supported with executor='process' "
                "(the callback cannot cross the process boundary); "
                "use executor='shared', which runs the sink in the parent"
            )
        result = RunResult(model=self.model_name)
        ctx.emit("run.start", model=self.model_name, executor=executor,
                 n_windows=self.spec.n_windows)
        with result.timings.phase("build"):
            partition = self.partition
        ctx.emit("build.done", n_multiwindows=len(partition))

        task_log: List[TaskRecord] = []
        window_results: Dict[int, WindowResult] = {}
        n_graphs = len(partition)
        done = 0

        def consume(task_result) -> None:
            wrs, tasks, work = task_result
            window_results.update(wrs)
            task_log.extend(tasks)
            result.work.merge(work)

        if executor == "shared" and n_graphs > 1:
            from repro.parallel.shared_arena import run_shared_tasks

            with result.timings.phase("pagerank"):
                task_results, stats = run_shared_tasks(
                    partition.graphs,
                    _shared_graph_worker,
                    args=(
                        self.config,
                        self.options,
                        self.events.n_vertices,
                        store_values,
                    ),
                    n_workers=ctx.n_workers,
                    value_sink=sink,
                )
            for task_result in task_results:
                consume(task_result)
                done += 1
                if progress is not None:
                    progress(done, n_graphs)
            result.metadata["shared_arena"] = stats
        elif executor in ("thread", "process") and n_graphs > 1:
            # one task per multi-window graph: the graph is the coarse
            # parallel unit (its windows chain through partial init)
            pool_cls = (
                ThreadPoolExecutor
                if executor == "thread"
                else ProcessPoolExecutor
            )
            with result.timings.phase("pagerank"):
                with pool_cls(ctx.n_workers) as pool:
                    futures = [
                        pool.submit(
                            solve_multiwindow_graph,
                            g,
                            i,
                            self.config,
                            self.options,
                            self.events.n_vertices,
                            store_values,
                            sink,
                        )
                        for i, g in enumerate(partition)
                    ]
                    for fut in futures:
                        consume(fut.result())
                        done += 1
                        if progress is not None:
                            progress(done, n_graphs)
        else:
            with result.timings.phase("pagerank"):
                for i, g in enumerate(partition):
                    consume(self._solve_graph(g, i, store_values, sink))
                    done += 1
                    ctx.emit("graph.done", multiwindow=i)
                    if progress is not None:
                        progress(done, n_graphs)

        result.windows = [
            window_results[i] for i in range(self.spec.n_windows)
        ]
        record_run_metadata(
            result,
            executor=executor,
            n_workers=ctx.n_workers,
            n_windows=self.spec.n_windows,
        )
        result.metadata["n_multiwindows"] = len(partition)
        result.metadata["replication_factor"] = partition.replication_factor
        result.metadata["backend"] = self.config.backend
        result.metadata["task_log"] = task_log
        result.metadata["options"] = self.options
        ctx.emit("run.done", model=self.model_name,
                 n_windows=self.spec.n_windows)
        return result

    # ------------------------------------------------------------------
    def _solve_graph(
        self,
        graph: MultiWindowGraph,
        mw_index: int,
        store_values: bool,
        value_sink=None,
    ):
        """Solve every window of one multi-window graph (one sequential
        partial-init chain).

        ``mw_index`` is passed by the caller: a ``partition.graphs.index``
        lookup here would rescan the partition (O(Y) comparisons of large
        graphs) for every graph solved.
        """
        return solve_multiwindow_graph(
            graph,
            mw_index,
            self.config,
            self.options,
            self.events.n_vertices,
            store_values,
            value_sink,
        )


def _emit_window(
    graph: MultiWindowGraph,
    window: int,
    view,
    local_values: np.ndarray,
    iterations: int,
    converged: bool,
    residual: float,
    out: Dict[int, WindowResult],
    store_values: bool,
    n_global_vertices: int,
    value_sink=None,
) -> None:
    values = (
        graph.to_global(local_values, n_global_vertices)
        if store_values or value_sink is not None
        else None
    )
    result = WindowResult(
        window_index=window,
        values=values if store_values else None,
        iterations=iterations,
        converged=converged,
        residual=residual,
        n_active_vertices=view.n_active_vertices,
        n_active_edges=view.n_active_edges,
    )
    if value_sink is not None:
        value_sink(window, values, result)
    out[window] = result


def _shared_graph_worker(
    graph: MultiWindowGraph,
    mw_index: int,
    sink,
    config: PagerankConfig,
    options: PostmortemOptions,
    n_global_vertices: int,
    store_values: bool,
):
    """Worker entry point for the ``"shared"`` executor.

    Invoked by :func:`repro.parallel.shared_arena.run_shared_tasks` with a
    graph rebuilt from shared-memory views and a queue-backed ``sink``
    stand-in (or ``None`` when the run has no ``value_sink``).
    """
    return solve_multiwindow_graph(
        graph,
        mw_index,
        config,
        options,
        n_global_vertices,
        store_values,
        sink,
    )


def solve_multiwindow_graph(
    graph: MultiWindowGraph,
    mw_index: int,
    config: PagerankConfig,
    options: PostmortemOptions,
    n_global_vertices: int,
    store_values: bool,
    value_sink=None,
):
    """Solve every window of one multi-window graph.

    A module-level function (not a method) so the ``"process"`` and
    ``"shared"`` executors can ship it to worker processes; within one
    graph the windows form a sequential partial-initialization chain, so a
    graph is the natural unit of coarse-grained parallelism.

    One kernel :class:`~repro.pagerank.workspace.Workspace` serves the
    whole chain: window views are built lazily against it and the batch
    loop retains only the views and rank vectors the *next* batch's
    partial initialization can reference (a batch's predecessors are, by
    construction of both schedules, in the immediately preceding batch),
    so peak memory stays at two batches of scratch regardless of chain
    length.
    """
    if options.kernel == "spmm" and graph.n_windows > 1:
        batches = spmm_region_schedule(
            graph.first_window, graph.n_windows, options.vector_length
        )
    else:
        batches = sequential_schedule(graph.first_window, graph.n_windows)

    from repro.pagerank.result import WorkStats
    from repro.pagerank.workspace import Workspace

    window_results: Dict[int, WindowResult] = {}
    local_values: Dict[int, np.ndarray] = {}
    tasks: List[TaskRecord] = []
    work = WorkStats()

    workspace = Workspace()
    views: Dict[int, object] = {}
    # edge_path="auto" iteration estimate: consecutive windows of a chain
    # have nearly identical spectra, so the previous solve's iteration
    # count is the best available predictor for the next one
    iteration_hint: Optional[int] = None

    def view_of(w: int):
        view = views.get(w)
        if view is None:
            view = graph.window_view(w, workspace=workspace)
            views[w] = view
        return view

    for batch in batches:
        batch_views = [view_of(w) for w in batch.windows]
        x0_cols = []
        used_partial = False
        for w, pred in zip(batch.windows, batch.predecessors):
            view = views[w]
            if (
                options.partial_init
                and pred is not None
                and pred in local_values
            ):
                x0_cols.append(
                    partial_initialization(
                        view, views[pred], local_values[pred]
                    )
                )
                used_partial = True
            else:
                x0_cols.append(full_initialization(view))

        if len(batch.windows) == 1:
            solver = (
                pagerank_window_weighted if options.weighted
                else pagerank_window
            )
            pr = solver(
                batch_views[0], config, x0=x0_cols[0], workspace=workspace,
                iteration_hint=iteration_hint,
            )
            # raw count on purpose: a zero (empty previous window) makes
            # resolve_edge_path fall back to its default estimate with a
            # debug note instead of being silently dropped here
            iteration_hint = pr.iterations
            local_values[batch.windows[0]] = pr.values
            work.merge(pr.work)
            _emit_window(
                graph,
                batch.windows[0],
                batch_views[0],
                pr.values,
                pr.iterations,
                pr.converged,
                pr.residual,
                window_results,
                store_values,
                n_global_vertices,
                value_sink,
            )
            tasks.append(
                TaskRecord(
                    multiwindow=mw_index,
                    windows=list(batch.windows),
                    iterations=pr.iterations,
                    structure_nnz=graph.nnz,
                    active_edges=batch_views[0].n_active_edges,
                    active_vertices=batch_views[0].n_active_vertices,
                    used_partial_init=used_partial,
                    kernel="spmv",
                )
            )
        else:
            X0 = np.stack(x0_cols, axis=1)
            batch_result = pagerank_windows_spmm(
                batch_views, config, x0=X0, workspace=workspace,
                iteration_hint=iteration_hint,
            )
            iteration_hint = int(batch_result.iterations_per_window.max())
            work.merge(batch_result.work)
            for j, w in enumerate(batch.windows):
                local_values[w] = batch_result.values[:, j].copy()
                _emit_window(
                    graph,
                    w,
                    batch_views[j],
                    local_values[w],
                    int(batch_result.iterations_per_window[j]),
                    bool(batch_result.converged[j]),
                    float(batch_result.residuals[j]),
                    window_results,
                    store_values,
                    n_global_vertices,
                    value_sink,
                )
            tasks.append(
                TaskRecord(
                    multiwindow=mw_index,
                    windows=list(batch.windows),
                    iterations=int(batch_result.iterations_per_window.max()),
                    structure_nnz=graph.nnz,
                    active_edges=sum(v.n_active_edges for v in batch_views),
                    active_vertices=sum(
                        v.n_active_vertices for v in batch_views
                    ),
                    used_partial_init=used_partial,
                    kernel="spmm",
                )
            )

        # only this batch's windows can seed the next batch's partial
        # init; dropping older views/vectors bounds the chain's footprint
        keep = set(batch.windows)
        views = {w: v for w, v in views.items() if w in keep}
        local_values = {w: v for w, v in local_values.items() if w in keep}
    return window_results, tasks, work
