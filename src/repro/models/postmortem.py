"""The postmortem execution model — the paper's contribution.

The driver builds the multi-window temporal-CSR representation **once**
(Section 4.1), then solves every window with:

* partial initialization across consecutive windows (Section 4.2),
* the SpMV kernel or the SpMM-inspired batched kernel with the strided
  region schedule (Section 4.4),
* optionally, real thread-based parallelism over windows in *contiguous
  chunks*, so a thread that owns both G_{i-1} and G_i still applies partial
  initialization (Section 4.3.1's scheduling constraint).

Since the vertex-program refactor the per-graph chain loop lives in
:mod:`repro.programs.engine`; this driver binds it to a
:class:`~repro.programs.base.VertexProgram` (PageRank by default — the
reference instance, bitwise-identical to the historic driver) and keeps
the model-level concerns: partitioning, executors, sinks, and the
machine-independent *task log* (per-window and per-batch work counters)
that the discrete-event machine simulator
(:mod:`repro.parallel.simulator`) replays to estimate multicore speedups —
the documented substitution for the paper's 48-core TBB runs.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Union

from repro.errors import ValidationError
from repro.events.event_set import TemporalEventSet
from repro.events.windows import WindowSpec
from repro.graph.multiwindow import (
    LazyMultiWindowPartition,
    MultiWindowGraph,
    MultiWindowPartition,
    build_compact_graph,
)
from repro.utils.arrays import is_mmap_backed
from repro.models.base import RunResult, WindowResult
from repro.pagerank.config import PagerankConfig
from repro.programs.base import VertexProgram
from repro.programs.engine import TaskRecord, solve_program_chain
from repro.programs.registry import resolve_program
from repro.runtime.base import record_run_metadata
from repro.runtime.context import DriverContext
from repro.runtime.sinks import chain_sinks

__all__ = [
    "PostmortemOptions",
    "PostmortemDriver",
    "TaskRecord",
    "solve_multiwindow_graph",
]

_KERNELS = ("spmv", "spmm")
_EXECUTORS = ("serial", "thread", "process", "shared")


@dataclass(frozen=True)
class PostmortemOptions:
    """Tuning knobs of the postmortem model.

    Attributes
    ----------
    n_multiwindows:
        Number of multi-window graphs Y (paper default in Figure 5: 6).
    partial_init:
        Warm-start each window from its predecessor (within the same
        multi-window graph).
    kernel:
        ``"spmv"`` (one window at a time) or ``"spmm"`` (batched windows
        with the region schedule; programs without a batched kernel fall
        back to the sequential schedule).
    vector_length:
        SpMM batch width (the paper uses 8 or 16).
    executor:
        ``"serial"``, ``"thread"`` (threads over multi-window graphs;
        scales only when kernels release the GIL), ``"process"``
        (process pool over multi-window graphs; true parallelism on any
        CPython at the cost of pickling each graph to its worker) or
        ``"shared"`` (process pool attached to a shared-memory arena:
        graphs are published once via
        :mod:`repro.parallel.shared_arena`, workers receive only
        segment-name handles — no array payload crosses the pickle
        boundary — and ``value_sink`` callbacks run in the parent, fed
        by a result shuttle).
    n_threads:
        Worker count for the ``"thread"``, ``"process"`` and
        ``"shared"`` executors.
    partition_method:
        ``"uniform"`` (the paper's equal-window-count split),
        ``"minimax"`` or ``"greedy"`` (the work-balanced splits of
        :mod:`repro.graph.balanced` — the paper's Section 7 open
        question).
    weighted:
        Weight window edges by their event multiplicity
        (:mod:`repro.pagerank.weighted`); requires the SpMV kernel and
        the PageRank program.
    materialize:
        ``"eager"`` builds every multi-window graph up front (the
        historic behaviour), ``"lazy"`` defers each graph until its
        worker solves it (peak memory: one graph per concurrent worker;
        requires the uniform partition), ``"auto"`` picks lazy exactly
        when the event arrays are memory-mapped (a ``.tcsr`` artifact)
        and the partition is uniform — the out-of-core configuration —
        and eager otherwise.  Results are identical either way.
    """

    n_multiwindows: int = 6
    partial_init: bool = True
    kernel: str = "spmv"
    vector_length: int = 16
    executor: str = "serial"
    n_threads: int = 4
    partition_method: str = "uniform"
    weighted: bool = False
    materialize: str = "auto"

    def __post_init__(self) -> None:
        if self.n_multiwindows <= 0:
            raise ValidationError("n_multiwindows must be > 0")
        if self.kernel not in _KERNELS:
            raise ValidationError(f"kernel must be one of {_KERNELS}")
        if self.vector_length <= 0:
            raise ValidationError("vector_length must be > 0")
        if self.executor not in _EXECUTORS:
            raise ValidationError(f"executor must be one of {_EXECUTORS}")
        if self.n_threads <= 0:
            raise ValidationError("n_threads must be > 0")
        if self.partition_method not in ("uniform", "minimax", "greedy"):
            raise ValidationError(
                "partition_method must be 'uniform', 'minimax' or 'greedy'"
            )
        if self.weighted and self.kernel != "spmv":
            raise ValidationError(
                "weighted PageRank requires kernel='spmv'"
            )
        if self.materialize not in ("auto", "eager", "lazy"):
            raise ValidationError(
                "materialize must be 'auto', 'eager' or 'lazy'"
            )
        if self.materialize == "lazy" and self.partition_method != "uniform":
            raise ValidationError(
                "materialize='lazy' requires partition_method='uniform' "
                "(balanced partitions need event counts for every window "
                "boundary up front)"
            )


class PostmortemDriver:
    """Runs Algorithm 1 under the postmortem model."""

    model_name = "postmortem"
    supported_executors = _EXECUTORS

    def __init__(
        self,
        events: TemporalEventSet,
        spec: WindowSpec,
        config: PagerankConfig = PagerankConfig(),
        options: PostmortemOptions = PostmortemOptions(),
        *,
        context: Optional[DriverContext] = None,
        program: Union[None, str, VertexProgram] = None,
    ) -> None:
        self.events = events
        self.spec = spec
        self.options = options
        # executor authority stays with PostmortemOptions (the model's
        # tuning surface); the context contributes sinks, hooks and the
        # runtime edge-path/backend/program overrides
        self.context = (
            context if context is not None else DriverContext()
        ).with_execution(options.executor, options.n_threads)
        if self.context.edge_path is not None:
            config = replace(config, edge_path=self.context.edge_path)
        if self.context.backend is not None:
            config = replace(config, backend=self.context.backend)
        self.config = config
        if program is None:
            program = self.context.program
        self.program = resolve_program(
            program, self.config, weighted=options.weighted
        )
        self._partition: Optional[MultiWindowPartition] = None

    # ------------------------------------------------------------------
    def _lazy_materialize(self) -> bool:
        """Whether this run defers graph construction to solve time."""
        if self.options.materialize == "lazy":
            return True
        if self.options.materialize == "eager":
            return False
        return (
            self.options.partition_method == "uniform"
            and is_mmap_backed(self.events.time)
        )

    @property
    def partition(self) -> MultiWindowPartition:
        """The multi-window representation (built lazily, once)."""
        if self._partition is None:
            if self.options.partition_method == "uniform":
                cls = (
                    LazyMultiWindowPartition
                    if self._lazy_materialize()
                    else MultiWindowPartition
                )
                self._partition = cls(
                    self.events, self.spec, self.options.n_multiwindows
                )
            else:
                from repro.graph.balanced import BalancedMultiWindowPartition

                self._partition = BalancedMultiWindowPartition(
                    self.events,
                    self.spec,
                    self.options.n_multiwindows,
                    method=self.options.partition_method,
                )
        return self._partition

    def run(
        self,
        store_values: bool = True,
        value_sink=None,
        *,
        progress=None,
    ) -> RunResult:
        """Solve every window; ``store_values=False`` keeps only per-window
        summaries (benchmark mode).

        ``value_sink`` is an optional callback ``sink(window_index, values,
        meta)`` invoked with each window's *global* value vector the moment
        it is solved — e.g. ``RankStoreWriter.write_window`` to stream a
        servable rank store to disk (chained after any context-level
        sink).  Combined with ``store_values=False`` a run persists every
        vector while holding only one in memory at a time.  The sink may
        be called concurrently under the ``"thread"`` executor (rank-store
        writers lock internally); the ``"process"`` executor cannot ship a
        callback to its workers — use ``executor="shared"``, whose result
        shuttle invokes the sink in the parent process.

        ``progress(graphs_done, graphs_total)`` reports at multi-window
        graph granularity — the model's unit of parallel work.
        """
        ctx = self.context
        executor = ctx.executor
        sink = chain_sinks(ctx.value_sink, value_sink)
        progress = progress if progress is not None else ctx.progress
        if sink is not None and executor == "process":
            raise ValidationError(
                "value_sink is not supported with executor='process' "
                "(the callback cannot cross the process boundary); "
                "use executor='shared', which runs the sink in the parent"
            )
        result = RunResult(model=self.model_name)
        ctx.emit("run.start", model=self.model_name, executor=executor,
                 n_windows=self.spec.n_windows, program=self.program.name)
        with result.timings.phase("build"):
            partition = self.partition
        ctx.emit("build.done", n_multiwindows=len(partition))

        task_log: List[TaskRecord] = []
        window_results: Dict[int, WindowResult] = {}
        n_graphs = len(partition)
        done = 0

        def consume(task_result) -> None:
            wrs, tasks, work = task_result
            window_results.update(wrs)
            task_log.extend(tasks)
            result.work.merge(work)

        lazy = isinstance(partition, LazyMultiWindowPartition)
        if executor == "shared" and n_graphs > 1 and lazy:
            # publish the raw event columns (zero-copy when they are
            # .tcsr-mapped) and ship only build recipes; each worker
            # slices, compacts and solves its graph in-process
            from repro.parallel.shared_arena import run_arena_tasks

            with result.timings.phase("pagerank"):
                task_results, stats = run_arena_tasks(
                    {
                        "src": self.events.src,
                        "dst": self.events.dst,
                        "time": self.events.time,
                    },
                    [partition.graph_payload(i) for i in range(n_graphs)],
                    _shared_lazy_graph_worker,
                    args=(
                        self.config,
                        self.options,
                        self.events.n_vertices,
                        store_values,
                        self.program,
                    ),
                    n_workers=ctx.n_workers,
                    value_sink=sink,
                )
            for task_result in task_results:
                consume(task_result)
                done += 1
                if progress is not None:
                    progress(done, n_graphs)
            result.metadata["shared_arena"] = stats
        elif executor == "shared" and n_graphs > 1:
            from repro.parallel.shared_arena import run_shared_tasks

            with result.timings.phase("pagerank"):
                task_results, stats = run_shared_tasks(
                    partition.graphs,
                    _shared_graph_worker,
                    args=(
                        self.config,
                        self.options,
                        self.events.n_vertices,
                        store_values,
                        self.program,
                    ),
                    n_workers=ctx.n_workers,
                    value_sink=sink,
                )
            for task_result in task_results:
                consume(task_result)
                done += 1
                if progress is not None:
                    progress(done, n_graphs)
            result.metadata["shared_arena"] = stats
        elif executor in ("thread", "process") and n_graphs > 1:
            # one task per multi-window graph: the graph is the coarse
            # parallel unit (its windows chain through partial init)
            pool_cls = (
                ThreadPoolExecutor
                if executor == "thread"
                else ProcessPoolExecutor
            )
            with result.timings.phase("pagerank"):
                with pool_cls(ctx.n_workers) as pool:
                    if lazy:
                        # ship the recipe, not the graph: workers build
                        # inside the pool, bounding live graphs at
                        # n_workers (a lazy partition pickles by
                        # artifact path, so process submission is cheap)
                        futures = [
                            pool.submit(
                                _solve_lazy_task,
                                partition,
                                i,
                                self.config,
                                self.options,
                                self.events.n_vertices,
                                store_values,
                                sink,
                                self.program,
                            )
                            for i in range(n_graphs)
                        ]
                    else:
                        futures = [
                            pool.submit(
                                solve_multiwindow_graph,
                                g,
                                i,
                                self.config,
                                self.options,
                                self.events.n_vertices,
                                store_values,
                                sink,
                                self.program,
                            )
                            for i, g in enumerate(partition)
                        ]
                    for fut in futures:
                        consume(fut.result())
                        done += 1
                        if progress is not None:
                            progress(done, n_graphs)
        else:
            with result.timings.phase("pagerank"):
                for i, g in enumerate(partition):
                    consume(self._solve_graph(g, i, store_values, sink))
                    done += 1
                    ctx.emit("graph.done", multiwindow=i)
                    if progress is not None:
                        progress(done, n_graphs)

        result.windows = [
            window_results[i] for i in range(self.spec.n_windows)
        ]
        record_run_metadata(
            result,
            executor=executor,
            n_workers=ctx.n_workers,
            n_windows=self.spec.n_windows,
        )
        result.metadata["n_multiwindows"] = len(partition)
        result.metadata["replication_factor"] = partition.replication_factor
        result.metadata["materialize"] = "lazy" if lazy else "eager"
        result.metadata["backend"] = self.config.backend
        result.metadata["program"] = self.program.name
        result.metadata["task_log"] = task_log
        result.metadata["options"] = self.options
        ctx.emit("run.done", model=self.model_name,
                 n_windows=self.spec.n_windows)
        return result

    # ------------------------------------------------------------------
    def _solve_graph(
        self,
        graph: MultiWindowGraph,
        mw_index: int,
        store_values: bool,
        value_sink=None,
    ):
        """Solve every window of one multi-window graph (one sequential
        warm-start chain).

        ``mw_index`` is passed by the caller: a ``partition.graphs.index``
        lookup here would rescan the partition (O(Y) comparisons of large
        graphs) for every graph solved.
        """
        return solve_multiwindow_graph(
            graph,
            mw_index,
            self.config,
            self.options,
            self.events.n_vertices,
            store_values,
            value_sink,
            self.program,
        )


def _shared_graph_worker(
    graph: MultiWindowGraph,
    mw_index: int,
    sink,
    config: PagerankConfig,
    options: PostmortemOptions,
    n_global_vertices: int,
    store_values: bool,
    program: Optional[VertexProgram] = None,
):
    """Worker entry point for the ``"shared"`` executor.

    Invoked by :func:`repro.parallel.shared_arena.run_shared_tasks` with a
    graph rebuilt from shared-memory views and a queue-backed ``sink``
    stand-in (or ``None`` when the run has no ``value_sink``).
    """
    return solve_multiwindow_graph(
        graph,
        mw_index,
        config,
        options,
        n_global_vertices,
        store_values,
        sink,
        program,
    )


def _shared_lazy_graph_worker(
    view,
    payload,
    mw_index: int,
    sink,
    config: PagerankConfig,
    options: PostmortemOptions,
    n_global_vertices: int,
    store_values: bool,
    program: Optional[VertexProgram] = None,
):
    """Arena worker for the lazy ``"shared"`` path.

    ``view`` holds the published event columns (file mappings when the
    run came from a ``.tcsr`` artifact — zero bytes were copied);
    ``payload`` is one :meth:`LazyMultiWindowPartition.graph_payload`
    recipe.  The graph is built here, inside the worker, and dies with
    the task — the parent never materializes it.
    """
    sub, first_window, lo, hi = payload
    graph = build_compact_graph(
        view.shared_view("src")[lo:hi],
        view.shared_view("dst")[lo:hi],
        view.shared_view("time")[lo:hi],
        sub,
        first_window,
    )
    return solve_multiwindow_graph(
        graph,
        mw_index,
        config,
        options,
        n_global_vertices,
        store_values,
        sink,
        program,
    )


def _solve_lazy_task(
    partition: LazyMultiWindowPartition,
    mw_index: int,
    config: PagerankConfig,
    options: PostmortemOptions,
    n_global_vertices: int,
    store_values: bool,
    value_sink=None,
    program: Optional[VertexProgram] = None,
):
    """Pool task for lazy thread/process execution: materialize one
    multi-window graph inside the worker, solve it, drop it."""
    graph = partition.graph_at(mw_index)
    return solve_multiwindow_graph(
        graph,
        mw_index,
        config,
        options,
        n_global_vertices,
        store_values,
        value_sink,
        program,
    )


def solve_multiwindow_graph(
    graph: MultiWindowGraph,
    mw_index: int,
    config: PagerankConfig,
    options: PostmortemOptions,
    n_global_vertices: int,
    store_values: bool,
    value_sink=None,
    program: Optional[VertexProgram] = None,
):
    """Solve every window of one multi-window graph.

    The model-level wrapper over :func:`repro.programs.engine.
    solve_program_chain`: it resolves the program (PageRank with
    ``options.weighted`` when none is given — the historic behaviour) and
    forwards the chain knobs from :class:`PostmortemOptions`.
    """
    if program is None:
        program = resolve_program(None, config, weighted=options.weighted)
    return solve_program_chain(
        graph,
        mw_index,
        program,
        partial_init=options.partial_init,
        kernel=options.kernel,
        vector_length=options.vector_length,
        n_global_vertices=n_global_vertices,
        store_values=store_values,
        value_sink=value_sink,
    )
