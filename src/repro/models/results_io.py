"""Persisting run results.

A postmortem run over thousands of windows is worth caching: downstream
analyses (rank stability, churn, rising actors) re-read the vectors many
times.  ``save_run`` / ``load_run`` store a :class:`~repro.models.base.
RunResult`'s vectors and per-window metadata in one ``.npz`` archive —
compressed by default, or uncompressed (``compress=False``) so
``load_run(path, mmap_mode="r")`` can reopen the vectors lazily without
copying the matrix.

The serving layer (:mod:`repro.service.store`) shares this module's
window-field schema and metadata sanitizer.
"""

from __future__ import annotations

import json
import os
import struct
import zipfile
from typing import Dict, Optional, Union

import numpy as np

from repro.errors import ValidationError
from repro.models.base import RunResult, WindowResult
from repro.utils.timer import TimingAccumulator

__all__ = ["WINDOW_FIELDS", "jsonable_metadata", "save_run", "load_run"]

PathLike = Union[str, os.PathLike]

#: the per-window summary fields every archive format carries
WINDOW_FIELDS = [
    "window_index",
    "iterations",
    "converged",
    "residual",
    "n_active_vertices",
    "n_active_edges",
]

_FIELDS = WINDOW_FIELDS  # backwards-compatible alias


def jsonable_metadata(metadata: Dict[str, object]) -> Dict[str, object]:
    """The JSON-serializable scalar subset of a run's metadata dict."""
    return {
        k: v
        for k, v in metadata.items()
        if isinstance(v, (int, float, str, bool))
    }


def save_run(run: RunResult, path: PathLike, compress: bool = True) -> None:
    """Serialize a run (with stored vectors) to an ``.npz`` archive.

    ``compress=False`` stores arrays raw (``np.savez``), which makes the
    archive eligible for lazy opening via ``load_run(path, mmap_mode="r")``.
    """
    if any(w.values is None for w in run.windows):
        raise ValidationError(
            "cannot save a run executed with store_values=False"
        )
    values = np.stack(
        [w.values for w in sorted(run.windows,
                                  key=lambda w: w.window_index)],
        axis=0,
    )
    meta = {
        "model": run.model,
        "timings": run.timings.as_dict(),
        "metadata": jsonable_metadata(run.metadata),
    }
    columns = {
        f: np.array(
            [getattr(w, f) for w in sorted(run.windows,
                                           key=lambda w: w.window_index)]
        )
        for f in WINDOW_FIELDS
    }
    save = np.savez_compressed if compress else np.savez
    save(
        path,
        values=values,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        **columns,
    )


def _memmap_npz_member(path: PathLike, member: str,
                       mmap_mode: str) -> np.ndarray:
    """Memory-map one ``.npy`` member of an *uncompressed* ``.npz``.

    ``np.load`` silently ignores ``mmap_mode`` for zip archives, but a
    member stored without compression is just a ``.npy`` file at a fixed
    byte offset, so we locate its data and hand it to ``np.memmap``.
    """
    with zipfile.ZipFile(path) as zf:
        info = zf.getinfo(member)
        if info.compress_type != zipfile.ZIP_STORED:
            raise ValidationError(
                f"archive member {member!r} is compressed and cannot be "
                "memory-mapped; re-save with save_run(..., compress=False)"
            )
        with open(path, "rb") as f:
            # the local file header precedes the data: 30 fixed bytes plus
            # the (local, possibly padded) name and extra fields
            f.seek(info.header_offset)
            header = f.read(30)
            name_len, extra_len = struct.unpack("<HH", header[26:30])
            payload_offset = info.header_offset + 30 + name_len + extra_len
            f.seek(payload_offset)
            version = np.lib.format.read_magic(f)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(f)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(f)
            else:  # pragma: no cover - numpy only writes 1.0/2.0 today
                raise ValidationError(
                    f"unsupported .npy format version {version} in "
                    f"{member!r}"
                )
            data_offset = f.tell()
    if fortran:  # pragma: no cover - save_run always writes C order
        raise ValidationError(
            f"archive member {member!r} is Fortran-ordered; cannot mmap"
        )
    return np.memmap(
        path, dtype=dtype, mode=mmap_mode, offset=data_offset, shape=shape
    )


def load_run(path: PathLike, mmap_mode: Optional[str] = None) -> RunResult:
    """Load a run saved by :func:`save_run`.

    With ``mmap_mode`` (e.g. ``"r"``), the vector matrix of an archive
    saved with ``compress=False`` is memory-mapped instead of read: each
    ``WindowResult.values`` is a row view into one shared ``np.memmap``,
    and no window's data is touched until accessed.
    """
    with np.load(path) as archive:
        required = {"values", "meta", *WINDOW_FIELDS}
        missing = required - set(archive.files)
        if missing:
            raise ValidationError(f"archive missing arrays: {sorted(missing)}")
        meta = json.loads(bytes(archive["meta"]).decode())
        if mmap_mode is not None:
            values = _memmap_npz_member(path, "values.npy", mmap_mode)
        else:
            values = archive["values"]
        run = RunResult(model=meta["model"])
        timings = TimingAccumulator()
        for k, v in meta["timings"].items():
            timings.add(k, float(v))
        run.timings = timings
        run.metadata.update(meta.get("metadata", {}))
        for i in range(values.shape[0]):
            run.windows.append(
                WindowResult(
                    window_index=int(archive["window_index"][i]),
                    values=values[i],
                    iterations=int(archive["iterations"][i]),
                    converged=bool(archive["converged"][i]),
                    residual=float(archive["residual"][i]),
                    n_active_vertices=int(archive["n_active_vertices"][i]),
                    n_active_edges=int(archive["n_active_edges"][i]),
                )
            )
        return run
