"""Persisting run results.

A postmortem run over thousands of windows is worth caching: downstream
analyses (rank stability, churn, rising actors) re-read the vectors many
times.  ``save_run`` / ``load_run`` store a :class:`~repro.models.base.
RunResult`'s vectors and per-window metadata in one compressed ``.npz``.
"""

from __future__ import annotations

import json
import os
from typing import Union

import numpy as np

from repro.errors import ValidationError
from repro.models.base import RunResult, WindowResult
from repro.utils.timer import TimingAccumulator

__all__ = ["save_run", "load_run"]

PathLike = Union[str, os.PathLike]

_FIELDS = [
    "window_index",
    "iterations",
    "converged",
    "residual",
    "n_active_vertices",
    "n_active_edges",
]


def save_run(run: RunResult, path: PathLike) -> None:
    """Serialize a run (with stored vectors) to a compressed archive."""
    if any(w.values is None for w in run.windows):
        raise ValidationError(
            "cannot save a run executed with store_values=False"
        )
    values = np.stack(
        [w.values for w in sorted(run.windows,
                                  key=lambda w: w.window_index)],
        axis=0,
    )
    meta = {
        "model": run.model,
        "timings": run.timings.as_dict(),
        "metadata": {
            k: v
            for k, v in run.metadata.items()
            if isinstance(v, (int, float, str, bool))
        },
    }
    columns = {
        f: np.array(
            [getattr(w, f) for w in sorted(run.windows,
                                           key=lambda w: w.window_index)]
        )
        for f in _FIELDS
    }
    np.savez_compressed(
        path,
        values=values,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        **columns,
    )


def load_run(path: PathLike) -> RunResult:
    """Load a run saved by :func:`save_run`."""
    with np.load(path) as archive:
        required = {"values", "meta", *_FIELDS}
        missing = required - set(archive.files)
        if missing:
            raise ValidationError(f"archive missing arrays: {sorted(missing)}")
        meta = json.loads(bytes(archive["meta"]).decode())
        values = archive["values"]
        run = RunResult(model=meta["model"])
        timings = TimingAccumulator()
        for k, v in meta["timings"].items():
            timings.add(k, float(v))
        run.timings = timings
        run.metadata.update(meta.get("metadata", {}))
        for i in range(values.shape[0]):
            run.windows.append(
                WindowResult(
                    window_index=int(archive["window_index"][i]),
                    values=values[i],
                    iterations=int(archive["iterations"][i]),
                    converged=bool(archive["converged"][i]),
                    residual=float(archive["residual"][i]),
                    n_active_vertices=int(archive["n_active_vertices"][i]),
                    n_active_edges=int(archive["n_active_edges"][i]),
                )
            )
        return run
