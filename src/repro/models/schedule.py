"""Window-ordering schedules for the postmortem model.

* **Sequential** — windows in natural order; window *i* warm-starts from
  *i-1* (the SpMV path).
* **SpMM region schedule** (paper Section 4.4) — a multi-window graph's run
  of windows is divided into ``vector_length`` contiguous *regions*; batch
  *b* takes the *b*-th window of every region (G0, G10, G20, ... then G1,
  G11, G21, ...).  Only the first batch (the region heads) lacks a
  predecessor computed in an earlier batch; every later batch warm-starts
  all of its windows from the previous batch — the trick that lets SpMM
  batching coexist with partial initialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["SpmmBatch", "spmm_region_schedule", "sequential_schedule"]


@dataclass(frozen=True)
class SpmmBatch:
    """One SpMM batch: the global window indices solved simultaneously and,
    for each, the predecessor window supplying partial initialization
    (``None`` -> full initialization)."""

    windows: List[int]
    predecessors: List[Optional[int]]

    def __post_init__(self) -> None:
        assert len(self.windows) == len(self.predecessors)

    @property
    def width(self) -> int:
        return len(self.windows)


def sequential_schedule(first_window: int, n_windows: int) -> List[SpmmBatch]:
    """Width-1 batches in natural order (the SpMV schedule)."""
    batches = []
    for i in range(n_windows):
        w = first_window + i
        pred = w - 1 if i > 0 else None
        batches.append(SpmmBatch(windows=[w], predecessors=[pred]))
    return batches


def spmm_region_schedule(
    first_window: int, n_windows: int, vector_length: int
) -> List[SpmmBatch]:
    """The strided region schedule of Section 4.4.

    Regions are the same uniform split used for multi-window graphs: the
    first ``n_windows % L`` regions get one extra window.  Batch *b*
    gathers the *b*-th window of every region that still has one.

    >>> [b.windows for b in spmm_region_schedule(0, 8, 4)]
    [[0, 2, 4, 6], [1, 3, 5, 7]]
    """
    if vector_length <= 0:
        raise ValueError(f"vector_length must be > 0, got {vector_length}")
    L = min(vector_length, n_windows)
    base = n_windows // L
    extra = n_windows % L
    region_starts = []
    start = 0
    region_sizes = []
    for r in range(L):
        size = base + (1 if r < extra else 0)
        region_starts.append(start)
        region_sizes.append(size)
        start += size

    n_batches = max(region_sizes)
    batches: List[SpmmBatch] = []
    for b in range(n_batches):
        windows: List[int] = []
        preds: List[Optional[int]] = []
        for r in range(L):
            if b >= region_sizes[r]:
                continue
            w = first_window + region_starts[r] + b
            windows.append(w)
            # region heads (b == 0) have no predecessor computed earlier;
            # all others warm-start from w-1, solved in batch b-1.
            preds.append(w - 1 if b > 0 else None)
        batches.append(SpmmBatch(windows=windows, predecessors=preds))
    return batches
