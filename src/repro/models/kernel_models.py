"""The three execution models for *arbitrary* window kernels.

The paper's Section 3.1 argues the sliding-window methodology applies to
"other kernels like closeness and betweenness centrality, connecting
component, k-core".  This module generalizes the execution-model
comparison beyond PageRank: run any per-window kernel under

* **offline** — rebuild the window's CSR from the event log each time;
* **streaming** — slide the STINGER-like structure and snapshot it;
* **postmortem** — the multi-window temporal CSR
  (:class:`~repro.kernels.driver.TemporalKernelDriver`).

Kernels receive a :class:`~repro.graph.temporal_csr.WindowView` in the
postmortem model and a ``(CSRGraph, active_mask)`` pair in the other two;
:func:`adapt_view_kernel` bridges the two signatures so one kernel
definition serves all three models.  The extension bench
(``benchmarks/bench_extension_kcore.py``) uses this to show the postmortem
representation advantage is not PageRank-specific.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

import numpy as np

from repro.events.event_set import TemporalEventSet
from repro.events.windows import WindowSpec
from repro.graph.csr import CSRGraph, build_csr_from_edges
from repro.graph.temporal_csr import TemporalAdjacency, WindowView
from repro.programs.adapter import TemporalKernelDriver
from repro.streaming.stinger import StreamingGraph
from repro.utils.timer import TimingAccumulator

__all__ = [
    "GraphKernel",
    "adapt_view_kernel",
    "KernelModelRun",
    "offline_kernel_run",
    "streaming_kernel_run",
    "streaming_kernel_run_stateful",
    "postmortem_kernel_run",
]

#: a kernel over a materialized simple graph: (graph, active_mask) -> value
GraphKernel = Callable[[CSRGraph, np.ndarray], Any]
"""Type alias: kernels the offline/streaming runners execute."""


def adapt_view_kernel(graph_kernel: GraphKernel) -> Callable[[WindowView], Any]:
    """Lift a (graph, active) kernel to the WindowView signature the
    postmortem driver uses."""

    def view_kernel(view: WindowView):
        return graph_kernel(view.compact_graph(), view.active_vertices_mask)

    view_kernel.__name__ = getattr(graph_kernel, "__name__", "kernel")
    return view_kernel


@dataclass
class KernelModelRun:
    """One model's outputs and timings for a kernel sweep."""

    model: str
    values: List[Any] = field(default_factory=list)
    timings: TimingAccumulator = field(default_factory=TimingAccumulator)

    @property
    def total_time(self) -> float:
        return self.timings.total


def _active_mask(src: np.ndarray, dst: np.ndarray, n: int) -> np.ndarray:
    mask = np.zeros(n, dtype=bool)
    mask[src] = True
    mask[dst] = True
    return mask


def offline_kernel_run(
    events: TemporalEventSet,
    spec: WindowSpec,
    kernel: GraphKernel,
) -> KernelModelRun:
    """Rebuild-per-window execution of a graph kernel."""
    run = KernelModelRun(model="offline")
    for window in spec:
        with run.timings.phase("build"):
            src, dst = events.edges_between(window.t_start, window.t_end)
            graph = build_csr_from_edges(
                src, dst, events.n_vertices, dedup=True
            )
            active = _active_mask(src, dst, events.n_vertices)
        with run.timings.phase("kernel"):
            run.values.append(kernel(graph, active))
    return run


def streaming_kernel_run(
    events: TemporalEventSet,
    spec: WindowSpec,
    kernel: GraphKernel,
    block_size: int = 64,
) -> KernelModelRun:
    """Sliding STINGER-like execution of a graph kernel."""
    run = KernelModelRun(model="streaming")
    stream = StreamingGraph(events, block_size)
    for window in spec:
        with run.timings.phase("update"):
            stream.advance_to(window)
        with run.timings.phase("snapshot"):
            graph, active = stream.snapshot()
        with run.timings.phase("kernel"):
            run.values.append(kernel(graph, active))
    return run


def streaming_kernel_run_stateful(
    events: TemporalEventSet,
    spec: WindowSpec,
    kernel,
    block_size: int = 64,
) -> KernelModelRun:
    """Streaming execution of a *stateful* kernel.

    The kernel signature is ``(graph, active, prev_value) -> value`` with
    ``prev_value=None`` on the first window — the generic form of the
    streaming model's warm-start advantage (incremental PageRank, Katz,
    etc. all fit it).
    """
    run = KernelModelRun(model="streaming-stateful")
    stream = StreamingGraph(events, block_size)
    prev = None
    for window in spec:
        with run.timings.phase("update"):
            stream.advance_to(window)
        with run.timings.phase("snapshot"):
            graph, active = stream.snapshot()
        with run.timings.phase("kernel"):
            value = kernel(graph, active, prev)
        run.values.append(value)
        prev = value
    return run


def postmortem_kernel_run(
    events: TemporalEventSet,
    spec: WindowSpec,
    kernel: GraphKernel,
    n_multiwindows: int = 6,
    view_kernel: Optional[Callable[[WindowView], Any]] = None,
) -> KernelModelRun:
    """Multi-window temporal-CSR execution of a graph kernel.

    ``view_kernel`` may supply a mask-native implementation that skips the
    per-window compaction entirely (e.g. the degree or PageRank kernels);
    by default the graph kernel runs on the window's compacted CSR in the
    local vertex space.
    """
    run = KernelModelRun(model="postmortem")
    driver = TemporalKernelDriver(events, spec, n_multiwindows)
    inner = view_kernel or adapt_view_kernel(kernel)
    result = driver.run(inner)
    run.values = result.kernel_values()
    run.timings = result.timings
    return run
