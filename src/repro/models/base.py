"""Common result containers for execution-model drivers.

Every driver — offline, streaming, postmortem, and the generic temporal
kernel driver — returns the same :class:`RunResult` so benchmarks and
tests compare them uniformly: one :class:`WindowResult` per window (in
window order), a per-phase timing breakdown, and aggregated
machine-independent work statistics.  Kernel runs use the ``value`` slot
for arbitrary per-window outputs (scalars, small arrays) where the
PageRank models fill ``values``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.errors import ValidationError
from repro.pagerank.result import WorkStats
from repro.utils.timer import TimingAccumulator

__all__ = ["WindowResult", "RunResult"]


@dataclass
class WindowResult:
    """One window's result, in the global vertex space.

    For the PageRank models ``values`` is the solved rank vector; it may
    be None when the driver runs with ``store_values=False`` (benchmark
    mode: keep the summary, drop the vectors).  Generic kernel runs
    (:class:`repro.kernels.driver.TemporalKernelDriver`) instead fill
    ``value`` with the kernel's per-window output — a scalar, a small
    array, whatever the kernel returns — and leave the solver fields at
    their defaults.
    """

    window_index: int
    values: Optional[np.ndarray] = None
    iterations: int = 0
    converged: bool = True
    residual: float = 0.0
    n_active_vertices: int = 0
    n_active_edges: int = 0
    value: Any = None

    def top_vertices(self, k: int = 10) -> List[tuple]:
        """The k highest-ranked vertices as (vertex, score) pairs."""
        if self.values is None:
            raise ValidationError(
                "values were not stored for this run (store_values=False)"
            )
        k = min(k, self.values.size)
        idx = np.argpartition(self.values, -k)[-k:]
        idx = idx[np.argsort(self.values[idx])[::-1]]
        return [(int(v), float(self.values[v])) for v in idx]


@dataclass
class RunResult:
    """The full output of one execution-model run over all windows."""

    model: str
    windows: List[WindowResult] = field(default_factory=list)
    timings: TimingAccumulator = field(default_factory=TimingAccumulator)
    work: WorkStats = field(default_factory=WorkStats)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    @property
    def total_time(self) -> float:
        return self.timings.total

    @property
    def total_iterations(self) -> int:
        return sum(w.iterations for w in self.windows)

    @property
    def all_converged(self) -> bool:
        return all(w.converged for w in self.windows)

    def window(self, index: int) -> WindowResult:
        for w in self.windows:
            if w.window_index == index:
                return w
        raise ValidationError(f"no result for window {index}")

    def values_matrix(self) -> np.ndarray:
        """All stored PageRank vectors stacked as ``(n_windows, n_vertices)``."""
        vecs = []
        for w in sorted(self.windows, key=lambda w: w.window_index):
            if w.values is None:
                raise ValidationError(
                    "values were not stored for this run (store_values=False)"
                )
            vecs.append(w.values)
        return np.stack(vecs, axis=0)

    def series(self, extract: Optional[Callable] = None):
        """Per-window generic kernel outputs in window order.

        With ``extract`` the outputs are projected to a scalar time series
        (e.g. ``lambda c: c.giant_fraction()``) returned as an array;
        without it the raw ``value`` slots are returned as a list.
        """
        ordered = sorted(self.windows, key=lambda w: w.window_index)
        if extract is None:
            return [w.value for w in ordered]
        return np.array([extract(w.value) for w in ordered])

    def kernel_values(self) -> List:
        """The raw per-window kernel outputs (``series()`` without a
        projection)."""
        return self.series()

    def max_difference(self, other: "RunResult") -> float:
        """Largest |Δ| between two runs' stored vectors (model equivalence
        checks)."""
        if self.n_windows != other.n_windows:
            raise ValidationError(
                f"window counts differ: {self.n_windows} vs {other.n_windows}"
            )
        return float(
            np.abs(self.values_matrix() - other.values_matrix()).max()
        ) if self.n_windows else 0.0
