"""The offline execution model (paper Section 3.3.1).

For every window, independently: slice the event log, build a fresh simple
graph (CSR), and run PageRank from a cold uniform start.  There is no state
shared between windows, which is what makes the model massively parallel —
and what makes it pay the full graph-construction cost per window, the
overhead the postmortem representation eliminates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.events.event_set import TemporalEventSet
from repro.events.windows import WindowSpec
from repro.graph.csr import build_csr_from_edges
from repro.models.base import RunResult, WindowResult
from repro.pagerank.config import PagerankConfig
from repro.streaming.incremental import incremental_pagerank

__all__ = ["OfflineDriver"]


class OfflineDriver:
    """Runs Algorithm 1 by rebuilding each window's graph from scratch."""

    model_name = "offline"

    def __init__(
        self,
        events: TemporalEventSet,
        spec: WindowSpec,
        config: PagerankConfig = PagerankConfig(),
    ) -> None:
        self.events = events
        self.spec = spec
        self.config = config

    def run(self, store_values: bool = True) -> RunResult:
        """Execute every window sequentially (the parallel substrate can
        fan individual windows out — see :mod:`repro.parallel`)."""
        result = RunResult(model=self.model_name)
        for window in self.spec:
            result.windows.append(self.run_window(window, result, store_values))
        result.metadata["n_windows"] = self.spec.n_windows
        return result

    def run_window(
        self, window, result: Optional[RunResult] = None, store_values=True
    ) -> WindowResult:
        """Build-and-solve one window; timings/work are accumulated into
        ``result`` when given."""
        sink = result if result is not None else RunResult(model=self.model_name)

        with sink.timings.phase("build"):
            src, dst = self.events.edges_between(window.t_start, window.t_end)
            graph = build_csr_from_edges(
                src, dst, self.events.n_vertices, dedup=True
            )
            active = np.zeros(self.events.n_vertices, dtype=bool)
            active[src] = True
            active[dst] = True

        with sink.timings.phase("pagerank"):
            pr = incremental_pagerank(graph, self.config, active=active)

        sink.work.merge(pr.work)
        return WindowResult(
            window_index=window.index,
            values=pr.values if store_values else None,
            iterations=pr.iterations,
            converged=pr.converged,
            residual=pr.residual,
            n_active_vertices=int(active.sum()),
            n_active_edges=graph.n_edges,
        )
