"""The offline execution model (paper Section 3.3.1).

For every window, independently: slice the event log, build a fresh simple
graph (CSR), and run PageRank from a cold uniform start.  There is no state
shared between windows, which is what the paper means by the offline model
being "embarrassingly parallel" — and what makes it pay the full
graph-construction cost per window, the overhead the postmortem
representation eliminates.

Because windows are fully independent, this is the one model that supports
every runtime executor:

* ``serial`` — the reference loop;
* ``thread`` — contiguous window chunks on a
  :class:`~repro.parallel.executor.ChunkedThreadExecutor` (the kernels
  release the GIL in NumPy);
* ``process`` — window chunks in a process pool, each task carrying only
  its chunk's slice of the event log (``value_sink`` cannot cross the
  process boundary and is rejected);
* ``shared`` — the event log's three columns published once into a
  shared-memory arena (:func:`repro.parallel.shared_arena.run_arena_tasks`),
  workers attach zero-copy and sinks run in the parent via the drain
  thread.

Every executor solves each window with the identical code path, so results
are bitwise-identical to the serial run — the parity tests assert this.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.events.event_set import TemporalEventSet
from repro.events.windows import Window, WindowSpec
from repro.graph.csr import build_csr_from_edges
from repro.models.base import RunResult, WindowResult
from repro.pagerank.config import PagerankConfig
from repro.parallel.executor import ChunkedThreadExecutor
from repro.programs.base import VertexProgram
from repro.programs.registry import resolve_program
from repro.runtime.base import record_run_metadata
from repro.runtime.context import NULL_SCOPE, DriverContext, RunScope
from repro.runtime.execution import require_executor
from repro.runtime.sinks import chain_sinks

__all__ = ["OfflineDriver", "solve_offline_chunk"]


def _solve_one_window(
    events: TemporalEventSet,
    window: Window,
    config: PagerankConfig,
    scope,
    store_values: bool,
    sink,
    program: VertexProgram,
) -> WindowResult:
    """Build-and-solve one window; the single code path every executor
    shares (which is what makes the parallel runs bitwise-identical).

    The solve goes through the program's materialized surface; with the
    reference PageRank program that is exactly the historic
    ``incremental_pagerank`` cold-start call."""
    with scope.phase("build"):
        src, dst = events.edges_between(window.t_start, window.t_end)
        graph = build_csr_from_edges(src, dst, events.n_vertices, dedup=True)
        active = np.zeros(events.n_vertices, dtype=bool)
        active[src] = True
        active[dst] = True

    with scope.phase("pagerank"):
        pr = program.solve_graph(graph, active)

    scope.add_work(pr.work)
    result = WindowResult(
        window_index=window.index,
        values=pr.values if store_values else None,
        iterations=pr.iterations,
        converged=pr.converged,
        residual=pr.residual,
        n_active_vertices=int(active.sum()),
        n_active_edges=graph.n_edges,
    )
    if sink is not None:
        sink(window.index, pr.values, result)
    return result


def solve_offline_chunk(
    events_arrays: Tuple[np.ndarray, np.ndarray, np.ndarray],
    n_vertices: int,
    spec: WindowSpec,
    lo: int,
    hi: int,
    config: PagerankConfig,
    store_values: bool,
    program: VertexProgram,
):
    """Solve the contiguous window chunk ``[lo, hi)`` from raw event
    columns.

    Module-level so the ``"process"`` executor can pickle it by reference;
    the arrays arrive either as a pickled slice of the log (process) or as
    zero-copy shared-memory views (shared).  Returns
    ``(window_results, timings, work)`` with vectors included when
    ``store_values`` (the parent also feeds them to any sink).
    """
    src, dst, time = events_arrays
    events = TemporalEventSet(src, dst, time, n_vertices, sort=False)
    scope = RunScope()
    results: List[WindowResult] = []
    for i in range(lo, hi):
        results.append(
            _solve_one_window(
                events, spec.window(i), config, scope, store_values, None,
                program,
            )
        )
    return results, scope.timings, scope.work


def _arena_offline_worker(
    view,
    payload: Tuple[int, int],
    index: int,
    sink,
    spec: WindowSpec,
    config: PagerankConfig,
    n_vertices: int,
    store_values: bool,
    program: VertexProgram,
):
    """Worker for the ``"shared"`` executor: rebuild the event set as
    zero-copy views of the published columns, solve the chunk, ship each
    vector through the queue-backed ``sink``."""
    lo, hi = payload
    events = TemporalEventSet(
        view.shared_view("src"),
        view.shared_view("dst"),
        view.shared_view("time"),
        n_vertices,
        sort=False,
    )
    scope = RunScope()
    results: List[WindowResult] = []
    for i in range(lo, hi):
        wr = _solve_one_window(
            events, spec.window(i), config, scope, store_values, sink,
            program,
        )
        results.append(wr)
    return results, scope.timings, scope.work


class OfflineDriver:
    """Runs Algorithm 1 by rebuilding each window's graph from scratch."""

    model_name = "offline"
    supported_executors = ("serial", "thread", "process", "shared")

    def __init__(
        self,
        events: TemporalEventSet,
        spec: WindowSpec,
        config: PagerankConfig = PagerankConfig(),
        *,
        context: Optional[DriverContext] = None,
        program=None,
    ) -> None:
        self.events = events
        self.spec = spec
        self.config = config
        self.context = context if context is not None else DriverContext()
        require_executor(
            self.context.executor, self.supported_executors, self.model_name
        )
        if program is None:
            program = self.context.program
        self.program = resolve_program(program, config)

    # ------------------------------------------------------------------
    def run_window(
        self, window: Window, scope=NULL_SCOPE, store_values: bool = True
    ) -> WindowResult:
        """Build-and-solve one window.

        ``scope`` is a :class:`~repro.runtime.context.RunScope`
        accumulating phase timings and work counters; the default
        :data:`~repro.runtime.context.NULL_SCOPE` measures nothing.
        """
        return _solve_one_window(
            self.events, window, self.config, scope, store_values, None,
            self.program,
        )

    def run(
        self,
        store_values: bool = True,
        *,
        value_sink=None,
        progress=None,
    ) -> RunResult:
        """Solve every window under the context's executor.

        ``value_sink(window_index, values, meta)`` receives each window's
        global rank vector as it is solved (chained after any context
        sink); with ``store_values=False`` a run can stream every vector
        to a rank store while holding only one chunk in memory.
        """
        ctx = self.context
        executor = ctx.executor
        sink = chain_sinks(ctx.value_sink, value_sink)
        progress = progress if progress is not None else ctx.progress
        if sink is not None and executor == "process":
            raise ValidationError(
                "value_sink is not supported with executor='process' "
                "(the callback cannot cross the process boundary); "
                "use executor='shared', which runs the sink in the parent"
            )

        result = RunResult(model=self.model_name)
        n = self.spec.n_windows
        ctx.emit("run.start", model=self.model_name, executor=executor,
                 n_windows=n)

        if executor == "serial":
            scope = RunScope.into(result)
            for window in self.spec:
                result.windows.append(
                    _solve_one_window(
                        self.events, window, self.config, scope,
                        store_values, sink, self.program,
                    )
                )
                ctx.emit("window.done", window=window.index)
                if progress is not None:
                    progress(window.index + 1, n)
        elif executor == "thread":
            result.windows = self._run_threaded(
                result, n, store_values, sink, progress
            )
        elif executor == "process":
            result.windows = self._run_process(result, n, store_values)
        else:  # shared
            result.windows = self._run_shared(result, n, store_values, sink)

        record_run_metadata(
            result, executor=executor, n_workers=ctx.n_workers, n_windows=n
        )
        result.metadata["program"] = self.program.name
        ctx.emit("run.done", model=self.model_name, n_windows=n)
        return result

    # ------------------------------------------------------------------
    def _run_threaded(
        self, result: RunResult, n: int, store_values: bool, sink, progress
    ) -> List[WindowResult]:
        """Contiguous window chunks on a thread pool; per-chunk scopes are
        merged after the fan-in so the hot path takes no lock."""
        ctx = self.context
        scopes: List[RunScope] = []
        scopes_lock = threading.Lock()
        done = [0]

        def solve_chunk(lo: int, hi: int) -> List[WindowResult]:
            scope = RunScope()
            out = [
                _solve_one_window(
                    self.events, self.spec.window(i), self.config, scope,
                    store_values, sink, self.program,
                )
                for i in range(lo, hi)
            ]
            with scopes_lock:
                scopes.append(scope)
                done[0] += hi - lo
                completed = done[0]
            if progress is not None:
                progress(completed, n)
            return out

        pool = ChunkedThreadExecutor(n_workers=ctx.n_workers)
        windows = pool.map_chunks(solve_chunk, n)
        # per-chunk build/pagerank phases sum CPU time across workers —
        # the same breakdown the serial run reports
        for scope in scopes:
            scope.merge_into(result)
        return windows

    def _run_process(
        self, result: RunResult, n: int, store_values: bool
    ) -> List[WindowResult]:
        """Window chunks in a process pool: each task is shipped only its
        chunk's slice of the event log (windows outside the slice are
        untouched, so results stay identical to serial)."""
        from concurrent.futures import ProcessPoolExecutor

        from repro.parallel.partitioners import SIMPLE, chunk_ranges

        ctx = self.context
        ranges = chunk_ranges(n, 1, SIMPLE, ctx.n_workers)
        windows: List[WindowResult] = []
        with ProcessPoolExecutor(max_workers=ctx.n_workers) as pool:
            futures = []
            for lo, hi in ranges:
                t_lo = self.spec.window(lo).t_start
                t_hi = self.spec.window(hi - 1).t_end
                chunk = self.events.events_between(t_lo, t_hi)
                futures.append(
                    pool.submit(
                        solve_offline_chunk,
                        (chunk.src, chunk.dst, chunk.time),
                        self.events.n_vertices,
                        self.spec,
                        lo,
                        hi,
                        self.config,
                        store_values,
                        self.program,
                    )
                )
            for fut in futures:
                wrs, timings, work = fut.result()
                windows.extend(wrs)
                result.timings.merge(timings)
                result.work.merge(work)
        return windows

    def _run_shared(
        self, result: RunResult, n: int, store_values: bool, sink
    ) -> List[WindowResult]:
        """Publish the event columns once into a shared-memory arena and
        fan window chunks out over it; sinks run in the parent via the
        arena's drain thread."""
        from repro.parallel.partitioners import SIMPLE, chunk_ranges
        from repro.parallel.shared_arena import run_arena_tasks

        ctx = self.context
        ranges = chunk_ranges(n, 1, SIMPLE, ctx.n_workers)
        task_results, stats = run_arena_tasks(
            {
                "src": self.events.src,
                "dst": self.events.dst,
                "time": self.events.time,
            },
            list(ranges),
            _arena_offline_worker,
            args=(
                self.spec,
                self.config,
                self.events.n_vertices,
                store_values,
                self.program,
            ),
            n_workers=ctx.n_workers,
            value_sink=sink,
        )
        windows: List[WindowResult] = []
        for wrs, timings, work in task_results:
            windows.extend(wrs)
            result.timings.merge(timings)
            result.work.merge(work)
        result.metadata["shared_arena"] = stats
        return windows
