"""Program registry: names for the first-class vertex programs.

``make_program`` is the seam the drivers, the CLI (``run --program``) and
:class:`~repro.runtime.context.DriverContext` share.  Concrete program
imports are lazy so importing this module (e.g. for name validation at
context construction) costs nothing and cannot participate in an import
cycle with :mod:`repro.kernels`.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.errors import ValidationError
from repro.programs.base import VertexProgram

__all__ = ["PROGRAMS", "make_program", "resolve_program", "validate_program_name"]

#: the first-class vertex programs, reference instance first
PROGRAMS: Tuple[str, ...] = ("pagerank", "katz", "kcore")


def validate_program_name(name: str) -> str:
    """Return ``name`` when registered; raise a uniform error otherwise."""
    if name not in PROGRAMS:
        raise ValidationError(
            f"unknown program {name!r}; expected one of {PROGRAMS}"
        )
    return name


def make_program(
    name: str,
    config=None,
    *,
    weighted: bool = False,
    katz_config=None,
) -> VertexProgram:
    """Construct the named program.

    ``config`` is the run's :class:`~repro.pagerank.config.PagerankConfig`
    — PageRank's solver parameters, and every gather-reduce program's
    propagation policy (edge path / backend / cache budget).
    ``katz_config`` optionally overrides the Katz parameters; ``weighted``
    applies only to PageRank.
    """
    validate_program_name(name)
    if weighted and name != "pagerank":
        raise ValidationError(
            f"weighted window solves apply only to pagerank, got {name!r}"
        )

    from repro.pagerank.config import PagerankConfig

    if config is None:
        config = PagerankConfig()

    if name == "pagerank":
        from repro.programs.pagerank import PagerankProgram

        return PagerankProgram(config=config, weighted=weighted)
    if name == "katz":
        from repro.kernels.katz import KatzConfig
        from repro.programs.katz import KatzProgram

        return KatzProgram(
            config=katz_config if katz_config is not None else KatzConfig(),
            routing=config,
        )

    from repro.programs.kcore import KCoreProgram

    return KCoreProgram()


def resolve_program(
    program: Union[None, str, VertexProgram],
    config=None,
    *,
    weighted: bool = False,
    katz_config=None,
) -> VertexProgram:
    """Normalize a driver's ``program`` argument to an instance.

    ``None`` means the reference program (PageRank); a string goes through
    :func:`make_program`; an instance passes through untouched.
    """
    if program is None:
        program = "pagerank"
    if isinstance(program, str):
        return make_program(
            program, config, weighted=weighted, katz_config=katz_config
        )
    if not isinstance(program, VertexProgram):
        raise ValidationError(
            "program must be a registered name or a VertexProgram, "
            f"got {type(program).__name__}"
        )
    if weighted and program.name != "pagerank":
        raise ValidationError(
            f"weighted window solves apply only to pagerank, "
            f"got {program.name!r}"
        )
    return program
