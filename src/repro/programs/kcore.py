"""Temporal k-core decomposition as a vertex program.

k-core is the engine's *non-iterative fixpoint* shape: each window's core
numbers are computed by peeling from scratch (no state transfers between
windows, no convergence loop to warm-start), so the program reports
``iterative = False`` and the engine runs it on the sequential schedule
without initial vectors.

Both solve surfaces reduce the window to the same undirected simple graph
and share :func:`repro.kernels.kcore.peel_core_numbers`, which makes
cross-model parity *exact* (integer core numbers, not a tolerance): the
temporal path deduplicates the multi-window structure's out-orientation,
the materialized path symmetrizes the snapshot CSR, and both hand the
identical edge set to one peeling.

Core numbers are served as ``float64`` so the rank-store / query stack —
built for real-valued rank vectors — works unchanged; values are exact
small integers and survive the cast losslessly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.temporal_csr import WindowView
from repro.kernels.kcore import (
    core_numbers,
    peel_core_numbers,
    undirected_simple_csr,
)
from repro.pagerank.result import PagerankResult, WorkStats
from repro.programs.base import VertexProgram

__all__ = ["KCoreProgram"]


def _as_result(core: np.ndarray, n_edges: int, n_active: int) -> PagerankResult:
    work = WorkStats()
    work.edge_traversals += n_edges
    work.active_edge_traversals += n_edges
    work.vertex_ops += n_active
    return PagerankResult(
        values=core.astype(np.float64),
        iterations=0,
        converged=True,
        residual=0.0,
        work=work,
    )


@dataclass(frozen=True)
class KCoreProgram(VertexProgram):
    """Per-window core numbers on the engine stack."""

    name = "kcore"
    iterative = False
    supports_batch = False

    # -- temporal surface ----------------------------------------------
    def init_window(self, view: WindowView) -> Optional[np.ndarray]:
        return None

    def solve_window(
        self,
        view: WindowView,
        x0: Optional[np.ndarray] = None,
        *,
        workspace=None,
        iteration_hint: Optional[int] = None,
    ) -> PagerankResult:
        core = core_numbers(view)
        return _as_result(
            core, view.n_active_edges, view.n_active_vertices
        )

    # -- materialized surface ------------------------------------------
    def solve_graph(
        self,
        graph: CSRGraph,
        active: np.ndarray,
        *,
        prev_values: Optional[np.ndarray] = None,
        prev_active: Optional[np.ndarray] = None,
    ) -> PagerankResult:
        src, dst = graph.edges()
        und = undirected_simple_csr(src, dst, graph.n_vertices)
        core = peel_core_numbers(und)
        mask = np.asarray(active, dtype=bool)
        return _as_result(core, graph.n_edges, int(mask.sum()))
