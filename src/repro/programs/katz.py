"""Temporal Katz centrality as a first-class vertex program.

Katz solves the affine fixed point  x = a · A^T x + b  — the same
gather-over-in-edges shape as the PageRank pull without the degree
normalization — so its temporal kernel reuses the SpMV propagation
contract *directly*: :func:`repro.pagerank.compaction.resolve_edge_path`
picks masked vs compacted edge traversal, the
:mod:`repro.pagerank.backends` registry supplies the
``make_plan``/``propagate`` pair (numpy / PCPM / numba), and the chain's
pooled workspace feeds the plan exactly as :mod:`repro.pagerank.spmv`
does.  The legacy :func:`repro.kernels.katz.katz_window` (plain
``segment_sum`` over the masked structure) remains as the standalone
kernel; this module is the engine-grade implementation.

Batched windows ride :func:`repro.kernels.katz_spmm.katz_windows_spmm`;
the materialized surface runs the identical affine iteration on a simple
CSR snapshot, with the same max-degree attenuation clamp so all three
execution models converge to the same fixed point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConvergenceError, ValidationError
from repro.graph.csr import CSRGraph
from repro.graph.temporal_csr import WindowView
from repro.kernels.katz import KatzConfig, _effective_attenuation, katz_partial_init
from repro.kernels.katz_spmm import katz_windows_spmm
from repro.pagerank.backends import resolve_backend
from repro.pagerank.compaction import resolve_edge_path
from repro.pagerank.config import PagerankConfig
from repro.pagerank.result import BatchPagerankResult, PagerankResult, WorkStats
from repro.programs.base import VertexProgram
from repro.utils.segments import segment_sum

__all__ = ["KatzProgram", "katz_window_backend"]


def _normalized(v: np.ndarray) -> np.ndarray:
    total = v.sum()
    return v / total if total > 0 else v


def katz_window_backend(
    view: WindowView,
    config: KatzConfig = KatzConfig(),
    routing: PagerankConfig = PagerankConfig(),
    x0: Optional[np.ndarray] = None,
    workspace=None,
    iteration_hint: Optional[int] = None,
) -> PagerankResult:
    """Katz centrality of one window through the backend contract.

    ``routing`` contributes only the propagation policy
    (``edge_path`` / ``backend`` / ``cache_budget``); the Katz parameters
    live in ``config``.  Output is L1-normalized over the active vertices,
    like :func:`repro.kernels.katz.katz_window`.
    """
    adjacency = view.adjacency
    n = adjacency.n_vertices
    n_active = view.n_active_vertices
    if n_active == 0:
        return PagerankResult(
            values=np.zeros(n, dtype=np.float64),
            iterations=0, converged=True, residual=0.0,
        )

    in_csr = adjacency.in_csr
    dedup = view.in_dedup
    nnz = in_csr.nnz
    active = view.active_vertices_mask
    a = _effective_attenuation(view, config)
    b = config.base / n_active

    path = resolve_edge_path(
        routing, nnz, view.n_active_edges, n, iteration_hint
    )
    if path == "compacted":
        packed = view.compact_pull(workspace=workspace)
        it_col, it_rows = packed.col, packed.rows
        it_nnz = packed.n_edges
    else:
        it_col, it_rows = in_csr.col, in_csr.row_ids()
        it_nnz = nnz
    it_mask = dedup if path != "compacted" else None

    work = WorkStats()
    backend = resolve_backend(routing, it_nnz, n, iteration_hint)
    t_bin = time.perf_counter()
    plan = backend.make_plan(
        it_col, it_rows, n,
        workspace=workspace, key="katz.plan", capacity=nnz,
    )
    work.binning_seconds += time.perf_counter() - t_bin

    if x0 is None:
        x = np.where(active, b, 0.0)
    else:
        x = np.asarray(x0, dtype=np.float64)
        if x.shape != (n,):
            raise ValidationError(f"x0 must have shape ({n},), got {x.shape}")
        x = x.copy()

    residual = np.inf
    for it in range(1, config.max_iterations + 1):
        # raw affine iteration x <- a A^T x + b (the true fixed point);
        # the residual compares normalized iterates, scale-invariantly
        t_prop = time.perf_counter()
        y = plan.propagate(x, mask=it_mask)
        work.propagate_seconds += time.perf_counter() - t_prop
        y = y * a
        y[active] += b
        y[~active] = 0.0

        residual = float(np.abs(_normalized(y) - _normalized(x)).sum())
        x = y
        work.iterations += 1
        work.edge_traversals += it_nnz
        work.active_edge_traversals += view.n_active_edges
        work.vertex_ops += n_active
        if residual < config.tolerance:
            return PagerankResult(_normalized(x), it, True, residual, work)

    if config.strict:
        raise ConvergenceError(
            f"Katz did not converge in {config.max_iterations} iterations"
        )
    return PagerankResult(
        _normalized(x), config.max_iterations, False, residual, work
    )


def _katz_graph(
    graph: CSRGraph,
    config: KatzConfig,
    active: np.ndarray,
    prev_values: Optional[np.ndarray] = None,
    prev_active: Optional[np.ndarray] = None,
) -> PagerankResult:
    """The materialized-surface Katz solve (offline / streaming models).

    Same attenuation clamp and normalization as the temporal kernels, so
    every execution model converges to one fixed point per window.
    """
    n = graph.n_vertices
    mask = np.asarray(active, dtype=bool)
    n_active = int(mask.sum())
    if n_active == 0:
        return PagerankResult(
            values=np.zeros(n, dtype=np.float64),
            iterations=0, converged=True, residual=0.0,
        )

    in_graph = graph.transpose()
    in_indptr, in_col = in_graph.indptr, in_graph.col
    a = config.attenuation
    if config.auto_clamp:
        out_deg = graph.out_degrees()
        in_deg = in_graph.out_degrees()
        dmax = int(max(in_deg.max(initial=0), out_deg.max(initial=0)))
        if dmax > 0:
            a = min(a, 0.9 / dmax)
    b = config.base / n_active

    if prev_values is not None:
        prev_values = np.asarray(prev_values, dtype=np.float64)
        shared = mask & (
            np.asarray(prev_active, dtype=bool)
            if prev_active is not None
            else prev_values > 0
        )
        n_shared = int(shared.sum())
        shared_mass = float(prev_values[shared].sum())
        x = np.zeros(n, dtype=np.float64)
        if n_shared and shared_mass > 0:
            x[shared] = prev_values[shared] * (
                (n_shared / n_active) / shared_mass
            )
            x[mask & ~shared] = 1.0 / n_active
        else:
            x[mask] = 1.0 / n_active
    else:
        x = np.where(mask, b, 0.0)

    work = WorkStats()
    residual = np.inf
    for it in range(1, config.max_iterations + 1):
        y = a * segment_sum(x[in_col], in_indptr)
        y[mask] += b
        y[~mask] = 0.0
        residual = float(np.abs(_normalized(y) - _normalized(x)).sum())
        x = y
        work.iterations += 1
        work.edge_traversals += graph.n_edges
        work.active_edge_traversals += graph.n_edges
        work.vertex_ops += n_active
        if residual < config.tolerance:
            return PagerankResult(_normalized(x), it, True, residual, work)

    if config.strict:
        raise ConvergenceError(
            f"Katz did not converge in {config.max_iterations} iterations"
        )
    return PagerankResult(
        _normalized(x), config.max_iterations, False, residual, work
    )


@dataclass(frozen=True)
class KatzProgram(VertexProgram):
    """Temporal Katz centrality on the PageRank-grade stack."""

    config: KatzConfig = field(default_factory=KatzConfig)
    #: propagation policy (edge path, backend, cache budget) — the Katz
    #: parameters themselves live in ``config``
    routing: PagerankConfig = field(default_factory=PagerankConfig)

    name = "katz"
    iterative = True
    supports_batch = True

    # -- temporal surface ----------------------------------------------
    def init_window(self, view: WindowView) -> np.ndarray:
        n = view.adjacency.n_vertices
        n_active = view.n_active_vertices
        if n_active == 0:
            return np.zeros(n, dtype=np.float64)
        b = self.config.base / n_active
        return np.where(view.active_vertices_mask, b, 0.0)

    def warm_start(
        self,
        view: WindowView,
        prev_view: WindowView,
        prev_values: np.ndarray,
    ) -> np.ndarray:
        return katz_partial_init(view, prev_view, prev_values)

    def solve_window(
        self,
        view: WindowView,
        x0: Optional[np.ndarray] = None,
        *,
        workspace=None,
        iteration_hint: Optional[int] = None,
    ) -> PagerankResult:
        return katz_window_backend(
            view, self.config, self.routing, x0=x0,
            workspace=workspace, iteration_hint=iteration_hint,
        )

    def solve_batch(
        self,
        views: Sequence[WindowView],
        x0: np.ndarray,
        *,
        workspace=None,
        iteration_hint: Optional[int] = None,
    ) -> BatchPagerankResult:
        # the batched kernel manages its own scratch; workspace and the
        # edge-path hint apply only to the SpMV-shaped path
        return katz_windows_spmm(views, self.config, x0=x0)

    # -- materialized surface ------------------------------------------
    def solve_graph(
        self,
        graph: CSRGraph,
        active: np.ndarray,
        *,
        prev_values: Optional[np.ndarray] = None,
        prev_active: Optional[np.ndarray] = None,
    ) -> PagerankResult:
        return _katz_graph(
            graph, self.config, active,
            prev_values=prev_values, prev_active=prev_active,
        )
