"""Temporal vertex programs: the engine every analytic runs on.

The package splits into the abstraction (:mod:`repro.programs.base`), the
registry (:mod:`repro.programs.registry` — lazy so name validation is
import-cheap), the chain engine (:mod:`repro.programs.engine`) and the
first-class programs (``pagerank`` / ``katz`` / ``kcore``).  Concrete
program modules are imported on demand by :func:`make_program`, keeping
this package's import light and cycle-free with :mod:`repro.kernels`.
"""

from repro.programs.base import VertexProgram
from repro.programs.registry import (
    PROGRAMS,
    make_program,
    resolve_program,
    validate_program_name,
)

__all__ = [
    "VertexProgram",
    "PROGRAMS",
    "make_program",
    "resolve_program",
    "validate_program_name",
]
