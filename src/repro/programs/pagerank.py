"""PageRank re-homed as the reference :class:`VertexProgram`.

Every hook delegates to the exact function the pre-engine drivers called —
:func:`~repro.pagerank.init.full_initialization` /
:func:`~repro.pagerank.init.partial_initialization` for state,
:func:`~repro.pagerank.spmv.pagerank_window` (or the weighted variant) and
:func:`~repro.pagerank.spmm.pagerank_windows_spmm` for the temporal
kernels, :func:`~repro.pagerank.incremental.incremental_pagerank` for the
materialized path — so engine output is bitwise-identical to the historic
driver by construction, not by tolerance.  The parity suite asserts this
across kernels × edge paths × backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.temporal_csr import WindowView
from repro.pagerank.config import PagerankConfig
from repro.pagerank.incremental import incremental_pagerank
from repro.pagerank.init import full_initialization, partial_initialization
from repro.pagerank.result import BatchPagerankResult, PagerankResult
from repro.pagerank.spmm import pagerank_windows_spmm
from repro.pagerank.spmv import pagerank_window
from repro.pagerank.weighted import pagerank_window_weighted
from repro.programs.base import VertexProgram

__all__ = ["PagerankProgram"]


@dataclass(frozen=True)
class PagerankProgram(VertexProgram):
    """The paper's PageRank (eq. 1) as a vertex program.

    ``weighted`` selects the event-multiplicity-weighted SpMV kernel,
    which has no batched form — the engine falls back to the sequential
    schedule exactly as :class:`PostmortemOptions` validation historically
    required.
    """

    config: PagerankConfig = field(default_factory=PagerankConfig)
    weighted: bool = False

    name = "pagerank"
    iterative = True

    @property
    def supports_batch(self) -> bool:  # type: ignore[override]
        return not self.weighted

    # -- temporal surface ----------------------------------------------
    def init_window(self, view: WindowView) -> np.ndarray:
        return full_initialization(view)

    def warm_start(
        self,
        view: WindowView,
        prev_view: WindowView,
        prev_values: np.ndarray,
    ) -> np.ndarray:
        return partial_initialization(view, prev_view, prev_values)

    def solve_window(
        self,
        view: WindowView,
        x0: Optional[np.ndarray] = None,
        *,
        workspace=None,
        iteration_hint: Optional[int] = None,
    ) -> PagerankResult:
        solver = pagerank_window_weighted if self.weighted else pagerank_window
        return solver(
            view, self.config, x0=x0, workspace=workspace,
            iteration_hint=iteration_hint,
        )

    def solve_batch(
        self,
        views: Sequence[WindowView],
        x0: np.ndarray,
        *,
        workspace=None,
        iteration_hint: Optional[int] = None,
    ) -> BatchPagerankResult:
        return pagerank_windows_spmm(
            views, self.config, x0=x0, workspace=workspace,
            iteration_hint=iteration_hint,
        )

    # -- materialized surface ------------------------------------------
    def solve_graph(
        self,
        graph: CSRGraph,
        active: np.ndarray,
        *,
        prev_values: Optional[np.ndarray] = None,
        prev_active: Optional[np.ndarray] = None,
    ) -> PagerankResult:
        return incremental_pagerank(
            graph,
            self.config,
            active=active,
            prev_values=prev_values,
            prev_active=prev_active,
        )
