"""The temporal vertex-program engine: one warm-start chain solver.

This is the PageRank-agnostic extraction of the postmortem driver's
per-multi-window-graph loop.  Everything the paper's machinery provides —
lazy window views against one pooled workspace, partial-initialization
chaining (Section 4.2) via the program's ``warm_start`` hook, the SpMM
region schedule (Section 4.4) for programs with a batched kernel, the
iteration-count feedback that drives ``edge_path="auto"``, and the
two-batch memory bound — now serves *any* :class:`~repro.programs.base.
VertexProgram`.  With the reference :class:`~repro.programs.pagerank.
PagerankProgram` the solve sequence is call-for-call identical to the
historic driver, so output is bitwise-identical by construction.

:class:`TaskRecord` (the machine-independent work log the parallel
simulator replays) lives here because the engine is what emits it;
:mod:`repro.models.postmortem` re-exports it for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.graph.multiwindow import MultiWindowGraph
from repro.pagerank.result import WorkStats
from repro.pagerank.workspace import Workspace
from repro.programs.base import VertexProgram

# imports from repro.models are lazy (inside the functions below): the
# model drivers import this engine, so a module-level import here would
# be circular for callers that reach the engine first (repro.kernels'
# adapter, direct engine users)

__all__ = ["TaskRecord", "solve_program_chain"]


@dataclass
class TaskRecord:
    """Machine-independent record of one solved task (window or SpMM
    batch), consumed by the parallel machine simulator."""

    multiwindow: int
    windows: List[int]
    iterations: int
    structure_nnz: int
    active_edges: int
    active_vertices: int
    used_partial_init: bool
    kernel: str


def _emit_window(
    graph: MultiWindowGraph,
    window: int,
    view,
    local_values: np.ndarray,
    iterations: int,
    converged: bool,
    residual: float,
    out: Dict[int, "WindowResult"],
    store_values: bool,
    n_global_vertices: int,
    value_sink=None,
) -> None:
    from repro.models.base import WindowResult

    values = (
        graph.to_global(local_values, n_global_vertices)
        if store_values or value_sink is not None
        else None
    )
    result = WindowResult(
        window_index=window,
        values=values if store_values else None,
        iterations=iterations,
        converged=converged,
        residual=residual,
        n_active_vertices=view.n_active_vertices,
        n_active_edges=view.n_active_edges,
    )
    if value_sink is not None:
        value_sink(window, values, result)
    out[window] = result


def _emit_generic_window(
    graph: MultiWindowGraph,
    window: int,
    view,
    value,
    out: Dict[int, "WindowResult"],
    store_values: bool,
    n_global_vertices: int,
    to_global: bool,
    value_sink=None,
) -> None:
    """Emit a window whose program produces an arbitrary object (adapter
    programs wrapping callable kernels), riding in ``WindowResult.value``
    instead of the per-vertex ``values`` slot."""
    from repro.models.base import WindowResult

    if (
        to_global
        and isinstance(value, np.ndarray)
        and value.shape == (graph.n_local_vertices,)
    ):
        value = graph.to_global(value, n_global_vertices)
    result = WindowResult(
        window_index=window,
        n_active_vertices=view.n_active_vertices,
        n_active_edges=view.n_active_edges,
        value=value,
    )
    if value_sink is not None:
        value_sink(window, value, result)
    if not store_values:
        result.value = None
    out[window] = result


def solve_program_chain(
    graph: MultiWindowGraph,
    mw_index: int,
    program: VertexProgram,
    *,
    partial_init: bool = True,
    kernel: str = "spmv",
    vector_length: int = 16,
    n_global_vertices: int,
    store_values: bool = True,
    value_sink=None,
):
    """Run ``program`` over every window of one multi-window graph.

    A module-level function (not a method) so the ``"process"`` and
    ``"shared"`` executors can ship it to worker processes; within one
    graph the windows form a sequential warm-start chain, so a graph is
    the natural unit of coarse-grained parallelism.

    One kernel :class:`~repro.pagerank.workspace.Workspace` serves the
    whole chain: window views are built lazily against it and the batch
    loop retains only the views and state vectors the *next* batch's
    warm start can reference (a batch's predecessors are, by construction
    of both schedules, in the immediately preceding batch), so peak
    memory stays at two batches of scratch regardless of chain length.

    ``kernel="spmm"`` engages the region schedule only for programs with
    a batched kernel (``supports_batch``); others fall back to the
    sequential schedule — the k-core fixpoint has no batch shape, but a
    ``--program kcore`` run must not have to know that.

    Returns ``(window_results, tasks, work)``.
    """
    from repro.models.schedule import (
        sequential_schedule,
        spmm_region_schedule,
    )

    if (
        kernel == "spmm"
        and graph.n_windows > 1
        and program.supports_batch
    ):
        batches = spmm_region_schedule(
            graph.first_window, graph.n_windows, vector_length
        )
    else:
        batches = sequential_schedule(graph.first_window, graph.n_windows)

    window_results: Dict[int, "WindowResult"] = {}
    local_values: Dict[int, np.ndarray] = {}
    tasks: List[TaskRecord] = []
    work = WorkStats()

    workspace = Workspace()
    views: Dict[int, object] = {}
    # edge_path="auto" iteration estimate: consecutive windows of a chain
    # have nearly identical spectra, so the previous solve's iteration
    # count is the best available predictor for the next one
    iteration_hint: Optional[int] = None
    chain_state = partial_init and program.iterative

    def view_of(w: int):
        view = views.get(w)
        if view is None:
            view = graph.window_view(w, workspace=workspace)
            views[w] = view
        return view

    for batch in batches:
        batch_views = [view_of(w) for w in batch.windows]
        x0_cols = []
        used_partial = False
        for w, pred in zip(batch.windows, batch.predecessors):
            view = views[w]
            if chain_state and pred is not None and pred in local_values:
                x0_cols.append(
                    program.warm_start(view, views[pred], local_values[pred])
                )
                used_partial = True
            else:
                x0_cols.append(program.init_window(view))

        if len(batch.windows) == 1:
            pr = program.solve_window(
                batch_views[0], x0_cols[0], workspace=workspace,
                iteration_hint=iteration_hint,
            )
            # raw count on purpose: a zero (empty previous window) makes
            # resolve_edge_path fall back to its default estimate with a
            # debug note instead of being silently dropped here
            iteration_hint = pr.iterations
            local_values[batch.windows[0]] = pr.values
            work.merge(pr.work)
            if not program.vertex_values:
                _emit_generic_window(
                    graph,
                    batch.windows[0],
                    batch_views[0],
                    pr.values,
                    window_results,
                    store_values,
                    n_global_vertices,
                    getattr(program, "to_global_values", False),
                    value_sink,
                )
                keep = set(batch.windows)
                views = {w: v for w, v in views.items() if w in keep}
                local_values = {
                    w: v for w, v in local_values.items() if w in keep
                }
                continue
            _emit_window(
                graph,
                batch.windows[0],
                batch_views[0],
                pr.values,
                pr.iterations,
                pr.converged,
                pr.residual,
                window_results,
                store_values,
                n_global_vertices,
                value_sink,
            )
            tasks.append(
                TaskRecord(
                    multiwindow=mw_index,
                    windows=list(batch.windows),
                    iterations=pr.iterations,
                    structure_nnz=graph.nnz,
                    active_edges=batch_views[0].n_active_edges,
                    active_vertices=batch_views[0].n_active_vertices,
                    used_partial_init=used_partial,
                    kernel="spmv",
                )
            )
        else:
            X0 = np.stack(x0_cols, axis=1)
            batch_result = program.solve_batch(
                batch_views, X0, workspace=workspace,
                iteration_hint=iteration_hint,
            )
            iteration_hint = int(batch_result.iterations_per_window.max())
            work.merge(batch_result.work)
            for j, w in enumerate(batch.windows):
                local_values[w] = batch_result.values[:, j].copy()
                _emit_window(
                    graph,
                    w,
                    batch_views[j],
                    local_values[w],
                    int(batch_result.iterations_per_window[j]),
                    bool(batch_result.converged[j]),
                    float(batch_result.residuals[j]),
                    window_results,
                    store_values,
                    n_global_vertices,
                    value_sink,
                )
            tasks.append(
                TaskRecord(
                    multiwindow=mw_index,
                    windows=list(batch.windows),
                    iterations=int(batch_result.iterations_per_window.max()),
                    structure_nnz=graph.nnz,
                    active_edges=sum(v.n_active_edges for v in batch_views),
                    active_vertices=sum(
                        v.n_active_vertices for v in batch_views
                    ),
                    used_partial_init=used_partial,
                    kernel="spmm",
                )
            )

        # only this batch's windows can seed the next batch's warm
        # start; dropping older views/vectors bounds the chain's footprint
        keep = set(batch.windows)
        views = {w: v for w, v in views.items() if w in keep}
        local_values = {w: v for w, v in local_values.items() if w in keep}
    return window_results, tasks, work
