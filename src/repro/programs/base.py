"""The temporal vertex-program contract.

The paper's machinery below the driver layer — multi-window partitioning
(Section 4.1), partial-initialization chains (Section 4.2), pooled
workspaces, executors, edge compaction and the propagation backends — is
PageRank-agnostic in principle: any per-window analytic that initializes a
per-vertex state, runs a (possibly iterative) propagation step over a
:class:`~repro.graph.temporal_csr.WindowView` and tests convergence can
ride the same stack.  :class:`VertexProgram` captures exactly that shape.

A program exposes **two solve surfaces**, one per graph representation:

* the *temporal* surface (``init_window`` / ``warm_start`` /
  ``solve_window`` / optional ``solve_batch``) operates on window views of
  a multi-window temporal CSR — the postmortem engine
  (:mod:`repro.programs.engine`) drives it through warm-start chains,
  pooled workspaces and the SpMM region schedule;
* the *materialized* surface (``solve_graph``) operates on a per-window
  simple :class:`~repro.graph.csr.CSRGraph` — the offline and streaming
  drivers use it, which is what makes cross-model parity a property every
  program inherits instead of a PageRank-only test.

Programs are small frozen dataclasses holding only configuration, so every
executor (thread / process / shared) can pickle them to workers.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.temporal_csr import WindowView
from repro.pagerank.result import BatchPagerankResult, PagerankResult

__all__ = ["VertexProgram"]


class VertexProgram:
    """Base class for per-window vertex analytics.

    Attributes
    ----------
    name:
        The program's registry name (recorded in run metadata and rank
        stores so the serving layer knows what it is serving).
    iterative:
        Whether windows chain: iterative programs are warm-started from
        the previous window's solution (``warm_start``); non-iterative
        fixpoints (k-core) solve each window independently and never
        receive an ``x0``.
    supports_batch:
        Whether ``solve_batch`` exists, i.e. the program has an
        SpMM-shaped batched kernel the region schedule can feed.
    vertex_values:
        Whether window solutions are per-vertex float vectors in the
        view's local space (the engine scatters them to the global space
        and can stream them into rank stores).  ``False`` for adapter
        programs wrapping callable kernels with arbitrary outputs, which
        ride in ``WindowResult.value`` instead.
    """

    name: str = "program"
    iterative: bool = True
    supports_batch: bool = False
    vertex_values: bool = True

    # -- temporal surface (postmortem engine) --------------------------
    def init_window(self, view: WindowView) -> Optional[np.ndarray]:
        """Cold-start state for one window (``None`` for non-iterative
        programs, which take no initial vector)."""
        raise NotImplementedError

    def warm_start(
        self,
        view: WindowView,
        prev_view: WindowView,
        prev_values: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Warm-start ``view`` from its predecessor's solution (the
        generalization of eq. 4 partial initialization).  Defaults to a
        cold start for programs without a useful transfer."""
        return self.init_window(view)

    def solve_window(
        self,
        view: WindowView,
        x0: Optional[np.ndarray] = None,
        *,
        workspace=None,
        iteration_hint: Optional[int] = None,
    ) -> PagerankResult:
        """Solve one window in the view's local vertex space.

        ``workspace`` is the chain's pooled
        :class:`~repro.pagerank.workspace.Workspace`; programs that use it
        must still return freshly owned values.  ``iteration_hint`` is the
        chain's previous iteration count (the ``edge_path="auto"``
        predictor); non-adaptive programs ignore it.
        """
        raise NotImplementedError

    def solve_batch(
        self,
        views: Sequence[WindowView],
        x0: np.ndarray,
        *,
        workspace=None,
        iteration_hint: Optional[int] = None,
    ) -> BatchPagerankResult:
        """Solve a region-schedule batch (column ``j`` of ``x0`` seeds
        ``views[j]``).  Only called when ``supports_batch``."""
        raise NotImplementedError

    # -- materialized surface (offline / streaming drivers) ------------
    def solve_graph(
        self,
        graph: CSRGraph,
        active: np.ndarray,
        *,
        prev_values: Optional[np.ndarray] = None,
        prev_active: Optional[np.ndarray] = None,
    ) -> PagerankResult:
        """Solve one window materialized as a simple graph (global vertex
        space).  ``prev_values``/``prev_active`` warm-start iterative
        programs across streamed windows; offline runs pass neither."""
        raise NotImplementedError
