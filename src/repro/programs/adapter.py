"""Adapter: run arbitrary per-window kernels on the vertex-program engine.

:class:`CallableProgram` wraps any callable taking a
:class:`~repro.graph.temporal_csr.WindowView` as a non-iterative
:class:`~repro.programs.base.VertexProgram` whose outputs ride in each
window's generic ``value`` slot (``vertex_values=False``), and
:class:`TemporalKernelDriver` — formerly a private loop in
:mod:`repro.kernels.driver` — becomes a thin shell over
:func:`~repro.programs.engine.solve_program_chain`.

Routing the kernel driver through the engine fixes its per-window graph
materialization: the old loop called ``graph.window_view(w)`` with no
workspace, reallocating every window's scratch buffers, while the engine
builds each chain's views against one pooled
:class:`~repro.pagerank.workspace.Workspace`.  It also moves the
``thread`` executor's unit of parallelism from single windows to whole
multi-window graphs — the same coarse granularity the postmortem driver
uses, and the one a pooled workspace requires (a workspace is not
thread-safe across concurrent views).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ValidationError
from repro.events.event_set import TemporalEventSet
from repro.events.windows import WindowSpec
from repro.graph.multiwindow import MultiWindowPartition
from repro.graph.temporal_csr import WindowView
from repro.models.base import RunResult, WindowResult
from repro.pagerank.result import PagerankResult
from repro.programs.base import VertexProgram
from repro.programs.engine import solve_program_chain
from repro.runtime.base import record_run_metadata
from repro.runtime.context import DriverContext
from repro.runtime.execution import map_tasks, require_executor
from repro.runtime.sinks import chain_sinks

__all__ = ["CallableProgram", "Kernel", "KernelWindowResult",
           "TemporalKernelDriver"]

Kernel = Callable[[WindowView], Any]

#: compatibility alias: one window's kernel output rides in
#: ``WindowResult.value``
KernelWindowResult = WindowResult


@dataclass(frozen=True)
class CallableProgram(VertexProgram):
    """A user-supplied per-window kernel as a vertex program.

    The kernel may return anything — a per-vertex array, a scalar, a
    components summary; ``vertex_values=False`` tells the engine to emit
    it through :class:`~repro.models.base.WindowResult`'s generic
    ``value`` slot rather than the scattered rank-vector path.  With
    ``to_global_values`` set, per-vertex float arrays in the multi-window
    local space are scattered to the global vertex space on the way out.

    Unlike the registered programs this one holds a callable, so it is
    picklable only when the kernel is (module-level kernels are; lambdas
    are not) — the kernel driver's executors (serial/thread) never need
    to pickle it.
    """

    kernel: Kernel
    to_global_values: bool = False

    name = "kernel"
    iterative = False
    supports_batch = False
    vertex_values = False

    def init_window(self, view: WindowView) -> None:
        return None

    def solve_window(
        self,
        view: WindowView,
        x0=None,
        *,
        workspace=None,
        iteration_hint: Optional[int] = None,
    ) -> PagerankResult:
        # the engine reads only ``.values`` and ``.work`` off generic
        # programs' results; iteration/convergence slots are vacuous
        return PagerankResult(
            values=self.kernel(view),
            iterations=0,
            converged=True,
            residual=0.0,
        )


class TemporalKernelDriver:
    """Postmortem execution of a per-window kernel.

    >>> driver = TemporalKernelDriver(events, spec, n_multiwindows=6)
    >>> result = driver.run(connected_components)
    >>> result.series(lambda c: c.n_components)
    """

    model_name = "kernel"
    supported_executors = ("serial", "thread")

    def __init__(
        self,
        events: TemporalEventSet,
        spec: WindowSpec,
        n_multiwindows: int = 6,
        to_global: bool = False,
        *,
        context: Optional[DriverContext] = None,
    ) -> None:
        if n_multiwindows <= 0:
            raise ValidationError("n_multiwindows must be > 0")
        self.events = events
        self.spec = spec
        self.n_multiwindows = n_multiwindows
        #: when True and the kernel returns a per-vertex array, scatter it
        #: from the multi-window local space into the global vertex space
        self.to_global = to_global
        self.context = context if context is not None else DriverContext()
        require_executor(
            self.context.executor, self.supported_executors, self.model_name
        )
        self._partition: Optional[MultiWindowPartition] = None

    @property
    def partition(self) -> MultiWindowPartition:
        if self._partition is None:
            self._partition = MultiWindowPartition(
                self.events, self.spec, self.n_multiwindows
            )
        return self._partition

    def run(
        self,
        kernel: Kernel,
        name: Optional[str] = None,
        *,
        store_values: bool = True,
        value_sink=None,
        progress=None,
    ) -> RunResult:
        """Apply ``kernel`` to every window, in window order.

        ``value_sink(window_index, value, meta)`` receives each window's
        kernel output as it is computed (per-vertex array kernels with
        ``to_global=True`` can stream straight into a rank store);
        ``store_values=False`` drops the outputs from the returned result
        after sinking.  The ``thread`` executor fans *multi-window graphs*
        out across workers — each graph's windows share one pooled
        workspace, so the graph is the unit of parallelism.
        """
        ctx = self.context
        sink = chain_sinks(ctx.value_sink, value_sink)
        progress = progress if progress is not None else ctx.progress
        result = RunResult(model=self.model_name)
        result.metadata["kernel_name"] = (
            name or getattr(kernel, "__name__", "kernel")
        )
        n = self.spec.n_windows
        ctx.emit("run.start", model=self.model_name, kernel=result.metadata[
            "kernel_name"], n_windows=n)

        with result.timings.phase("build"):
            partition = self.partition

        program = CallableProgram(kernel, to_global_values=self.to_global)
        done = [0]
        done_lock = threading.Lock()

        def emit(w: int, value, wr: WindowResult) -> None:
            if sink is not None:
                sink(w, value, wr)
            if progress is not None:
                with done_lock:
                    done[0] += 1
                    completed = done[0]
                progress(completed, n)

        def solve_graph(g: int) -> Dict[int, WindowResult]:
            window_results, _, work = solve_program_chain(
                partition[g],
                g,
                program,
                partial_init=False,
                n_global_vertices=self.events.n_vertices,
                store_values=store_values,
                value_sink=emit,
            )
            return window_results

        with result.timings.phase("kernel"):
            per_graph = map_tasks(
                solve_graph,
                range(len(partition)),
                executor=ctx.executor,
                n_workers=ctx.n_workers,
            )
            merged: Dict[int, WindowResult] = {}
            for window_results in per_graph:
                merged.update(window_results)
            result.windows = [merged[w] for w in range(n)]

        record_run_metadata(
            result, executor=ctx.executor, n_workers=ctx.n_workers,
            n_windows=n,
        )
        ctx.emit("run.done", model=self.model_name, n_windows=n)
        return result
