"""Rank-quality metrics for comparing PageRank vectors.

Used by tests and examples to confirm that cheaper configurations (looser
tolerance, SpMM batching, warm starts) preserve the *ranking*, which is what
downstream analyses consume.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["spearman_rank_correlation", "topk_overlap", "l1_distance"]


def _check_pair(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValidationError("inputs must be 1-D vectors of equal length")
    return a, b


def spearman_rank_correlation(a, b) -> float:
    """Spearman rho between two score vectors (1.0 = identical ranking)."""
    a, b = _check_pair(a, b)
    if a.size < 2:
        return 1.0
    ra = np.argsort(np.argsort(a)).astype(np.float64)
    rb = np.argsort(np.argsort(b)).astype(np.float64)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt((ra**2).sum() * (rb**2).sum())
    if denom == 0:
        return 1.0
    return float((ra * rb).sum() / denom)


def topk_overlap(a, b, k: int = 10) -> float:
    """Fraction of shared vertices among the two top-k sets (Jaccard-style
    |A ∩ B| / k)."""
    a, b = _check_pair(a, b)
    if k <= 0:
        raise ValidationError("k must be > 0")
    k = min(k, a.size)
    ta = set(np.argpartition(a, -k)[-k:].tolist())
    tb = set(np.argpartition(b, -k)[-k:].tolist())
    return len(ta & tb) / k


def l1_distance(a, b) -> float:
    """Total variation-style L1 distance between two vectors."""
    a, b = _check_pair(a, b)
    return float(np.abs(a - b).sum())
