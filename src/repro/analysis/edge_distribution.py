"""Temporal edge distributions (paper Figure 4).

Bins an event set's timestamps into fixed intervals and reports the counts
— the per-dataset curves the paper uses to predict which parallelization
level will win (spiky -> application-level, smooth high-volume -> nested,
many balanced windows -> window-level).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import EmptyEventSetError
from repro.events.event_set import TemporalEventSet

__all__ = ["edge_distribution", "distribution_summary", "DistributionSummary"]


def edge_distribution(
    events: TemporalEventSet, n_bins: int = 60
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of event counts over time.

    Returns ``(bin_starts, counts)`` with ``n_bins`` equal-width bins
    covering ``[t_min, t_max]``.
    """
    if len(events) == 0:
        raise EmptyEventSetError("edge distribution needs events")
    edges = np.linspace(events.t_min, events.t_max + 1, n_bins + 1)
    counts, _ = np.histogram(events.time, bins=edges)
    return edges[:-1].astype(np.int64), counts.astype(np.int64)


@dataclass(frozen=True)
class DistributionSummary:
    """Shape statistics of a temporal edge distribution.

    ``peak_to_mean`` — how dominant the busiest bin is (Enron spike: large;
    smooth growth: small).
    ``gini`` — inequality of work across bins (drives load imbalance).
    ``trend`` — Pearson correlation of count vs time (growth datasets: near
    1; spikes: near 0).
    """

    peak_to_mean: float
    gini: float
    trend: float

    @property
    def shape_class(self) -> str:
        """A coarse label matching the paper's Figure 4 narrative."""
        if self.peak_to_mean > 6.0:
            return "spike"
        if self.trend > 0.75:
            return "growth"
        if self.peak_to_mean > 2.5:
            return "bursty"
        return "steady"


def distribution_summary(
    events: TemporalEventSet, n_bins: int = 60
) -> DistributionSummary:
    """Compute :class:`DistributionSummary` for an event set."""
    _, counts = edge_distribution(events, n_bins)
    counts = counts.astype(np.float64)
    mean = counts.mean()
    peak_to_mean = float(counts.max() / mean) if mean > 0 else 0.0

    # Gini coefficient over bins
    sorted_c = np.sort(counts)
    n = sorted_c.size
    cum = np.cumsum(sorted_c)
    gini = float(
        (n + 1 - 2 * (cum / cum[-1]).sum()) / n
    ) if cum[-1] > 0 else 0.0

    t = np.arange(n, dtype=np.float64)
    if counts.std() > 0:
        trend = float(np.corrcoef(t, counts)[0, 1])
    else:
        trend = 0.0
    return DistributionSummary(
        peak_to_mean=peak_to_mean, gini=gini, trend=trend
    )
