"""Per-window structural statistics, including triangle counting.

The paper's related work covers streaming triangle counting (Han & Sethu)
and degree-distribution estimation (Stolman & Matulef); the postmortem
counterparts are direct computations on each window's compact graph:

* :func:`triangle_count` — exact undirected triangles via the sparse
  matrix identity  triangles = trace(A³)/6  computed as
  ``(A @ A).multiply(A).sum() / 6`` on the symmetrized simple graph;
* :func:`degree_histogram` — the window's (undirected) degree
  distribution;
* :func:`window_stats` — one row of summary statistics per window
  (density, mean/max degree, triangles, clustering proxy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.temporal_csr import WindowView

__all__ = ["triangle_count", "degree_histogram", "window_stats", "WindowStatsRow"]


def _symmetric_scipy(view: WindowView):
    from scipy.sparse import csr_matrix

    g = view.compact_graph()
    src, dst = g.edges()
    keep = src != dst
    src, dst = src[keep], dst[keep]
    n = g.n_vertices
    data = np.ones(2 * src.size, dtype=np.float64)
    m = csr_matrix(
        (data, (np.concatenate([src, dst]), np.concatenate([dst, src]))),
        shape=(n, n),
    )
    m.data[:] = 1.0  # collapse duplicate mutual edges
    m.sum_duplicates()
    m.data[:] = np.minimum(m.data, 1.0)
    return m


def triangle_count(view: WindowView) -> int:
    """Exact number of undirected triangles in the window's simple graph."""
    if view.n_active_edges == 0:
        return 0
    a = _symmetric_scipy(view)
    paths = (a @ a).multiply(a)
    return int(round(paths.sum() / 6.0))


def degree_histogram(view: WindowView) -> np.ndarray:
    """``hist[d]`` = number of active vertices with undirected degree d."""
    if view.n_active_vertices == 0:
        return np.zeros(1, dtype=np.int64)
    a = _symmetric_scipy(view)
    deg = np.asarray(a.sum(axis=1)).ravel().astype(np.int64)
    deg = deg[view.active_vertices_mask]
    return np.bincount(deg)


@dataclass
class WindowStatsRow:
    """One window's structural summary."""

    window_index: int
    n_vertices: int
    n_edges: int
    density: float
    mean_degree: float
    max_degree: int
    triangles: int
    transitivity: float


def window_stats(view: WindowView) -> WindowStatsRow:
    """Summary statistics for one window (undirected view)."""
    n = view.n_active_vertices
    if n == 0:
        return WindowStatsRow(view.window.index, 0, 0, 0.0, 0.0, 0, 0, 0.0)
    a = _symmetric_scipy(view)
    deg = np.asarray(a.sum(axis=1)).ravel()
    active_deg = deg[view.active_vertices_mask]
    m = int(a.nnz // 2)
    tri = triangle_count(view)
    # transitivity = 3 * triangles / number of connected vertex triples
    wedges = float((active_deg * (active_deg - 1) / 2).sum())
    return WindowStatsRow(
        window_index=view.window.index,
        n_vertices=n,
        n_edges=m,
        density=2.0 * m / (n * max(n - 1, 1)),
        mean_degree=float(active_deg.mean()),
        max_degree=int(active_deg.max()),
        triangles=tri,
        transitivity=3.0 * tri / wedges if wedges else 0.0,
    )
