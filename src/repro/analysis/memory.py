"""Memory accounting for the postmortem representation (Section 4.1).

The paper prices the multi-window representation at

    encoding x (Σ_w |V_w| + 2 x Σ_w |E_w|)

with 64-bit encoding, and requires it to fit in memory alongside the
intermediate PageRank vectors.  These helpers report both the model
formula and the actually-allocated bytes per multi-window graph, plus the
replication overhead vs. the raw event log — the quantity the multi-window
count Y trades against per-SpMV work (Figure 8's companion discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.graph.multiwindow import MultiWindowPartition

__all__ = ["MemoryReport", "memory_report", "ENCODING_BYTES"]

ENCODING_BYTES = 8  # the paper: "we use 64-bit for all data"


@dataclass
class GraphMemory:
    """Memory of one multi-window graph."""

    index: int
    n_windows: int
    n_vertices: int
    n_events: int
    model_bytes: int
    allocated_bytes: int


@dataclass
class MemoryReport:
    """Memory of a full multi-window partition."""

    graphs: List[GraphMemory]
    raw_event_bytes: int
    replication_factor: float

    @property
    def total_model_bytes(self) -> int:
        """The paper's formula summed over all multi-window graphs."""
        return sum(g.model_bytes for g in self.graphs)

    @property
    def total_allocated_bytes(self) -> int:
        return sum(g.allocated_bytes for g in self.graphs)

    @property
    def overhead_vs_raw(self) -> float:
        """Allocated representation bytes per raw event-log byte."""
        return self.total_allocated_bytes / max(self.raw_event_bytes, 1)

    def pagerank_workspace_bytes(self, vector_length: int = 1) -> int:
        """The intermediate-vector memory one in-flight solve needs per
        multi-window graph (x and y per column), maximized over graphs —
        the part the paper says must be "retained available"."""
        return max(
            (2 * g.n_vertices * vector_length * ENCODING_BYTES
             for g in self.graphs),
            default=0,
        )


def memory_report(partition: MultiWindowPartition) -> MemoryReport:
    """Account the memory of a multi-window partition."""
    graphs = []
    for i, g in enumerate(partition.graphs):
        model = ENCODING_BYTES * (g.n_local_vertices + 2 * g.nnz)
        graphs.append(
            GraphMemory(
                index=i,
                n_windows=g.n_windows,
                n_vertices=g.n_local_vertices,
                n_events=g.nnz,
                model_bytes=model,
                allocated_bytes=g.memory_bytes(),
            )
        )
    raw = 3 * ENCODING_BYTES * len(partition.events)  # (src, dst, time)
    return MemoryReport(
        graphs=graphs,
        raw_event_bytes=raw,
        replication_factor=partition.replication_factor,
    )
