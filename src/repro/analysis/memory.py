"""Memory accounting for the postmortem representation (Section 4.1).

The paper prices the multi-window representation at

    encoding x (Σ_w |V_w| + 2 x Σ_w |E_w|)

with 64-bit encoding, and requires it to fit in memory alongside the
intermediate PageRank vectors.  These helpers report both the model
formula and the actually-allocated bytes per multi-window graph, plus the
replication overhead vs. the raw event log — the quantity the multi-window
count Y trades against per-SpMV work (Figure 8's companion discussion).

Out-of-core runs split the accounting: ``heap_bytes`` is what the process
actually owns (resident by construction), ``mapped_bytes`` is file-backed
address space the kernel pages in and out on demand (a ``.tcsr`` artifact
opened via :func:`repro.graph.io.open_events`).  Only the heap side counts
against the paper's fit-in-memory requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from repro.graph.multiwindow import (
    LazyMultiWindowPartition,
    MultiWindowPartition,
)
from repro.utils.arrays import heap_and_mapped_bytes

__all__ = ["MemoryReport", "memory_report", "ENCODING_BYTES"]

ENCODING_BYTES = 8  # the paper: "we use 64-bit for all data"


@dataclass
class GraphMemory:
    """Memory of one multi-window graph.

    ``heap_bytes`` + ``mapped_bytes`` partition the graph's array bytes by
    residency: heap allocations vs file-backed memory maps.  For a lazy
    partition the graphs are transient — ``heap_bytes`` is then the peak
    one in-flight graph costs, not a standing allocation.
    """

    index: int
    n_windows: int
    n_vertices: int
    n_events: int
    model_bytes: int
    heap_bytes: int
    mapped_bytes: int

    @property
    def allocated_bytes(self) -> int:
        """All array bytes regardless of residency (legacy name)."""
        return self.heap_bytes + self.mapped_bytes


@dataclass
class MemoryReport:
    """Memory of a full multi-window partition."""

    graphs: List[GraphMemory]
    raw_event_bytes: int
    raw_event_mapped_bytes: int
    replication_factor: float
    lazy: bool

    @property
    def total_model_bytes(self) -> int:
        """The paper's formula summed over all multi-window graphs."""
        return sum(g.model_bytes for g in self.graphs)

    @property
    def total_heap_bytes(self) -> int:
        """Bytes the process owns outright.  For a lazy partition the
        graphs are built per task and dropped, so the standing total is 0
        and the per-graph values are transient peaks."""
        if self.lazy:
            return 0
        return sum(g.heap_bytes for g in self.graphs)

    @property
    def total_mapped_bytes(self) -> int:
        return sum(g.mapped_bytes for g in self.graphs)

    @property
    def total_allocated_bytes(self) -> int:
        return sum(g.allocated_bytes for g in self.graphs)

    @property
    def peak_transient_bytes(self) -> int:
        """Largest single-graph heap cost — what one in-flight lazy
        materialization adds to RSS."""
        return max((g.heap_bytes for g in self.graphs), default=0)

    @property
    def overhead_vs_raw(self) -> float:
        """Allocated representation bytes per raw event-log byte."""
        return self.total_allocated_bytes / max(self.raw_event_bytes, 1)

    def pagerank_workspace_bytes(self, vector_length: int = 1) -> int:
        """The intermediate-vector memory one in-flight solve needs per
        multi-window graph (x and y per column), maximized over graphs —
        the part the paper says must be "retained available"."""
        return max(
            (2 * g.n_vertices * vector_length * ENCODING_BYTES
             for g in self.graphs),
            default=0,
        )


def memory_report(
    partition: Union[MultiWindowPartition, LazyMultiWindowPartition],
) -> MemoryReport:
    """Account the memory of a multi-window partition.

    Works for both eager and lazy partitions; for a lazy one, graphs are
    materialized one at a time (never all resident) and reported as
    transient costs.
    """
    lazy = isinstance(partition, LazyMultiWindowPartition)
    graphs = []
    graph_iter = iter(partition) if lazy else partition.graphs
    for i, g in enumerate(graph_iter):
        model = ENCODING_BYTES * (g.n_local_vertices + 2 * g.nnz)
        graphs.append(
            GraphMemory(
                index=i,
                n_windows=g.n_windows,
                n_vertices=g.n_local_vertices,
                n_events=g.nnz,
                model_bytes=model,
                heap_bytes=g.memory_bytes(),
                mapped_bytes=g.mapped_bytes(),
            )
        )
    events = partition.events
    raw_heap, raw_mapped = heap_and_mapped_bytes(
        [events.src, events.dst, events.time]
    )
    return MemoryReport(
        graphs=graphs,
        raw_event_bytes=raw_heap + raw_mapped,
        raw_event_mapped_bytes=raw_mapped,
        replication_factor=partition.replication_factor,
        lazy=lazy,
    )
