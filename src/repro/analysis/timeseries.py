"""Time-series analytics over per-window results.

Postmortem analysis exists to study *change over time* (the paper's
introduction: "one can also be interested in understanding the nature of
changes in the graph over time").  These helpers turn a window-indexed
sequence of score vectors into the summaries analysts read:

* :func:`rank_stability_series` — Spearman correlation between consecutive
  windows' rankings (a crisis shows up as a stability dip);
* :func:`topk_churn_series` — how much of the top-k turns over per window;
* :func:`rising_vertices` — vertices with the steepest rank gains over a
  span (the "actors becoming central" question of Section 3.2);
* :func:`detect_change_points` — z-score change detection over any scalar
  series (e.g. edge counts, giant-component fraction).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import spearman_rank_correlation, topk_overlap
from repro.errors import ValidationError

__all__ = [
    "rank_stability_series",
    "topk_churn_series",
    "rising_vertices",
    "detect_change_points",
]


def _check_matrix(values: Sequence[np.ndarray]) -> List[np.ndarray]:
    vecs = [np.asarray(v, dtype=np.float64) for v in values]
    if len(vecs) < 2:
        raise ValidationError("need at least two windows")
    n = vecs[0].size
    if any(v.shape != (n,) for v in vecs):
        raise ValidationError("all windows must share the vertex space")
    return vecs


def rank_stability_series(
    values: Sequence[np.ndarray], min_shared: int = 5
) -> np.ndarray:
    """Spearman rho between each consecutive window pair, restricted to
    vertices active (> 0) in both; NaN when fewer than ``min_shared``
    vertices are shared."""
    vecs = _check_matrix(values)
    out = np.full(len(vecs) - 1, np.nan)
    for i in range(len(vecs) - 1):
        shared = (vecs[i] > 0) & (vecs[i + 1] > 0)
        if int(shared.sum()) >= min_shared:
            out[i] = spearman_rank_correlation(
                vecs[i][shared], vecs[i + 1][shared]
            )
    return out


def topk_churn_series(
    values: Sequence[np.ndarray], k: int = 10
) -> np.ndarray:
    """Per-step turnover of the top-k set: ``1 - overlap``; 0 = stable."""
    vecs = _check_matrix(values)
    return np.array(
        [
            1.0 - topk_overlap(vecs[i], vecs[i + 1], k=k)
            for i in range(len(vecs) - 1)
        ]
    )


def rising_vertices(
    values: Sequence[np.ndarray],
    window_from: int,
    window_to: int,
    top: int = 5,
) -> List[Tuple[int, float, float]]:
    """Vertices with the largest score gains between two windows.

    Returns ``(vertex, score_from, score_to)`` sorted by gain descending.
    """
    vecs = _check_matrix(values)
    if not (0 <= window_from < len(vecs) and 0 <= window_to < len(vecs)):
        raise ValidationError("window indices out of range")
    a, b = vecs[window_from], vecs[window_to]
    gain = b - a
    top = min(top, gain.size)
    idx = np.argpartition(gain, -top)[-top:]
    idx = idx[np.argsort(gain[idx])[::-1]]
    return [(int(v), float(a[v]), float(b[v])) for v in idx]


def detect_change_points(
    series: np.ndarray, z_threshold: float = 3.0, warmup: int = 5
) -> np.ndarray:
    """Indices where a scalar series jumps more than ``z_threshold``
    running standard deviations from the running mean.

    A simple online z-score detector: position i is flagged when
    ``|x[i] - mean(x[:i])| > z * std(x[:i])`` with at least ``warmup``
    history points.  Used on edge-count series to locate crisis spikes.
    """
    x = np.asarray(series, dtype=np.float64)
    if x.ndim != 1:
        raise ValidationError("series must be 1-D")
    if z_threshold <= 0:
        raise ValidationError("z_threshold must be > 0")
    flags = []
    for i in range(warmup, x.size):
        history = x[:i]
        std = history.std()
        if std == 0:
            continue
        if abs(x[i] - history.mean()) > z_threshold * std:
            flags.append(i)
    return np.array(flags, dtype=np.int64)
