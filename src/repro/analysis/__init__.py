"""Analysis helpers: temporal edge distributions (Figure 4), model
comparisons (Figure 5), speedup aggregation (Figures 6–12)."""

from repro.analysis.edge_distribution import (
    edge_distribution,
    distribution_summary,
)
from repro.analysis.comparison import (
    ModelTiming,
    compare_models,
    speedup_grid,
)
from repro.analysis.memory import MemoryReport, memory_report
from repro.analysis.graph_stats import triangle_count, degree_histogram, window_stats
from repro.analysis.timeseries import (
    rank_stability_series,
    topk_churn_series,
    rising_vertices,
    detect_change_points,
)
from repro.analysis.metrics import (
    spearman_rank_correlation,
    topk_overlap,
    l1_distance,
)

__all__ = [
    "edge_distribution",
    "distribution_summary",
    "ModelTiming",
    "compare_models",
    "speedup_grid",
    "MemoryReport",
    "memory_report",
    "triangle_count",
    "degree_histogram",
    "window_stats",
    "spearman_rank_correlation",
    "topk_overlap",
    "l1_distance",
    "rank_stability_series",
    "topk_churn_series",
    "rising_vertices",
    "detect_change_points",
]
