"""Cross-model timing comparisons (Figures 5, 11, 12).

:func:`compare_models` runs the three execution models on one (dataset,
window-spec) configuration and reports measured wall-clock per model plus
the postmortem/streaming speedup — the paper's headline metric.
:func:`speedup_grid` sweeps a (sliding offset × window size) grid and
collects the per-cell best speedup, the data behind the Figure 11 heatmaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.events.event_set import TemporalEventSet
from repro.events.windows import WindowSpec
from repro.models.postmortem import PostmortemOptions
from repro.pagerank.config import PagerankConfig
from repro.runtime.registry import MODELS, make_driver
from repro.utils.timer import Timer

__all__ = ["ModelTiming", "compare_models", "speedup_grid"]


@dataclass
class ModelTiming:
    """Wall-clock comparison of the three models on one configuration."""

    offline_seconds: float
    streaming_seconds: float
    postmortem_seconds: float
    n_windows: int
    phase_breakdown: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def postmortem_vs_streaming(self) -> float:
        """Speedup of postmortem over streaming (the paper's 50–880×)."""
        return self.streaming_seconds / max(self.postmortem_seconds, 1e-12)

    @property
    def postmortem_vs_offline(self) -> float:
        return self.offline_seconds / max(self.postmortem_seconds, 1e-12)

    @property
    def streaming_vs_offline(self) -> float:
        return self.offline_seconds / max(self.streaming_seconds, 1e-12)


def compare_models(
    events: TemporalEventSet,
    spec: WindowSpec,
    config: Optional[PagerankConfig] = None,
    options: Optional[PostmortemOptions] = None,
    check_agreement: bool = False,
) -> ModelTiming:
    """Run offline, streaming and postmortem on one configuration.

    ``check_agreement=True`` additionally verifies the three models return
    the same PageRank vectors (slower: vectors must be stored).
    """
    config = config or PagerankConfig()
    options = options or PostmortemOptions()
    store = check_agreement

    # one uniform invocation per model — the runtime registry is the
    # seam, no bespoke per-model construction
    runs: Dict[str, object] = {}
    seconds: Dict[str, float] = {}
    for model in MODELS:
        driver = make_driver(
            model, events, spec, config, postmortem_options=options
        )
        with Timer() as t:
            runs[model] = driver.run(store_values=store)
        seconds[model] = t.elapsed

    if check_agreement:
        tol = max(config.tolerance * 1e3, 1e-7)
        pm = runs["postmortem"]
        d1 = runs["offline"].max_difference(pm)
        d2 = runs["streaming"].max_difference(pm)
        if d1 > tol or d2 > tol:
            raise AssertionError(
                f"models disagree: offline-postmortem {d1:.2e}, "
                f"streaming-postmortem {d2:.2e} (tol {tol:.2e})"
            )

    return ModelTiming(
        offline_seconds=seconds["offline"],
        streaming_seconds=seconds["streaming"],
        postmortem_seconds=seconds["postmortem"],
        n_windows=spec.n_windows,
        phase_breakdown={
            model: runs[model].timings.as_dict() for model in MODELS
        },
    )


def speedup_grid(
    events: TemporalEventSet,
    sliding_offsets: Sequence[int],
    window_sizes_days: Sequence[float],
    speedup_fn: Callable[[WindowSpec], float],
    max_windows: Optional[int] = None,
) -> Tuple[np.ndarray, List[int], List[float]]:
    """Evaluate ``speedup_fn`` over a (sw × delta) grid (Figure 11 data).

    Returns ``(grid, sliding_offsets, window_sizes_days)`` where
    ``grid[i, j]`` is the speedup at window size ``window_sizes_days[i]``
    and offset ``sliding_offsets[j]`` (the paper's heatmap orientation).
    ``max_windows`` caps each cell's window count to bound runtime.
    """
    grid = np.zeros((len(window_sizes_days), len(sliding_offsets)))
    for i, ws in enumerate(window_sizes_days):
        for j, sw in enumerate(sliding_offsets):
            spec = WindowSpec.covering_days(events, ws, sw)
            if max_windows is not None and spec.n_windows > max_windows:
                spec = WindowSpec(
                    t0=spec.t0,
                    delta=spec.delta,
                    sw=spec.sw,
                    n_windows=max_windows,
                )
            grid[i, j] = speedup_fn(spec)
    return grid, list(sliding_offsets), list(window_sizes_days)
