"""Runtime sanitizers: dynamic enforcement of the two most dangerous
lint rules.

Static analysis (:mod:`repro.lint`) catches the *patterns* of PR 1's
serving-layer bugs; this module catches the *behaviour* at test time:

* **boundary freezing** — arrays that cross the QueryEngine cache or
  RankStore mmap boundary are marked ``writeable=False``, so an in-place
  write to a shared cached slice raises immediately instead of silently
  corrupting every later reader of that cache entry;
* **lock-order assertion** — service-layer locks are
  :class:`OrderedLock` instances with a global rank; acquiring a lock
  whose rank is not strictly greater than the highest rank the thread
  already holds raises :class:`~repro.errors.LockOrderError`, turning a
  latent deadlock into a deterministic test failure.

Both checks are off by default and cost one module-global boolean test
per operation when disabled.  Enable them with ``REPRO_SANITIZE=1`` in
the environment (honored at import time, and by the test suite's
session fixture) or by calling :func:`enable_sanitizers`.
"""

from __future__ import annotations

import os
import threading
from typing import Optional

import numpy as np

from repro.errors import LockOrderError

__all__ = [
    "LOCK_RANK_CLUSTER_STATE",
    "LOCK_RANK_CLUSTER_REPLICA",
    "LOCK_RANK_CLUSTER_COUNTERS",
    "LOCK_RANK_ENGINE_CACHE",
    "LOCK_RANK_EXECUTOR_COUNTERS",
    "LOCK_RANK_EXECUTOR_STATE",
    "LOCK_RANK_STORE_WRITER",
    "OrderedLock",
    "disable_sanitizers",
    "enable_sanitizers",
    "freeze_boundary",
    "make_lock",
    "sanitizers_enabled",
]

#: the global service-layer lock order, outermost (lowest rank) first;
#: any nested acquisition must move to a strictly larger rank.  The
#: cluster tier sits above (outside) the per-process serving stack: the
#: coordinator may route into a replica proxy, and a proxy may touch its
#: counters, while the worker-side executor/engine/store locks live in a
#: different process entirely (but keep the order anyway — the in-process
#: test cluster exercises both halves in one interpreter).
LOCK_RANK_CLUSTER_STATE = 4
LOCK_RANK_CLUSTER_REPLICA = 6
LOCK_RANK_CLUSTER_COUNTERS = 8
LOCK_RANK_EXECUTOR_STATE = 10
LOCK_RANK_EXECUTOR_COUNTERS = 20
LOCK_RANK_ENGINE_CACHE = 30
LOCK_RANK_STORE_WRITER = 40

_TRUTHY = {"1", "true", "yes", "on"}


def _env_requested() -> bool:
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY


_enabled = _env_requested()


def sanitizers_enabled() -> bool:
    """Whether sanitizer mode is currently on."""
    return _enabled


def enable_sanitizers() -> None:
    """Turn on boundary freezing and lock-order assertions (idempotent)."""
    global _enabled
    _enabled = True


def disable_sanitizers() -> None:
    """Turn sanitizer mode back off (objects already frozen stay frozen)."""
    global _enabled
    _enabled = False


# ----------------------------------------------------------------------
# boundary freezing
# ----------------------------------------------------------------------
def freeze_boundary(array: np.ndarray) -> np.ndarray:
    """Mark an array crossing a cache/mmap boundary read-only.

    No-op unless sanitizers are enabled.  Freezing is applied to arrays
    that are *shared* across callers (cached slices, mmap views); arrays
    the caller owns outright (e.g. trajectory copies) stay writable.
    """
    if _enabled and isinstance(array, np.ndarray):
        # clearing writeable is always permitted (unlike setting it)
        array.flags.writeable = False
    return array


# ----------------------------------------------------------------------
# lock-order assertion
# ----------------------------------------------------------------------
_held = threading.local()


class OrderedLock:
    """A ``threading.Lock`` with a rank checked against the global order.

    When sanitizers are enabled, each thread tracks the stack of ranks it
    holds; acquiring a lock whose rank is <= the top of that stack raises
    :class:`~repro.errors.LockOrderError` *before* blocking, so the test
    fails at the violation site instead of deadlocking.  Disabled, the
    overhead is a single boolean check per acquire/release.
    """

    __slots__ = ("name", "rank", "_lock")

    def __init__(self, name: str, rank: int) -> None:
        self.name = name
        self.rank = int(rank)
        self._lock = threading.Lock()

    def _stack(self) -> list:
        stack = getattr(_held, "stack", None)
        if stack is None:
            stack = []
            _held.stack = stack
        return stack

    def acquire(self, blocking: bool = True,
                timeout: Optional[float] = None) -> bool:
        if _enabled:
            stack = self._stack()
            if stack and self.rank <= stack[-1][0]:
                top_rank, top_name = stack[-1]
                raise LockOrderError(
                    f"lock order violation: acquiring '{self.name}' "
                    f"(rank {self.rank}) while holding '{top_name}' "
                    f"(rank {top_rank}); service-layer locks must be "
                    "taken in strictly increasing rank order"
                )
        if timeout is None:
            acquired = self._lock.acquire(blocking)
        else:
            acquired = self._lock.acquire(blocking, timeout)
        if acquired and _enabled:
            self._stack().append((self.rank, self.name))
        return acquired

    def release(self) -> None:
        self._lock.release()
        stack = getattr(_held, "stack", None)
        if stack:
            entry = (self.rank, self.name)
            for i in range(len(stack) - 1, -1, -1):
                if stack[i] == entry:
                    del stack[i]
                    break

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OrderedLock({self.name!r}, rank={self.rank})"


def make_lock(name: str, rank: int) -> OrderedLock:
    """The service layer's lock constructor (always order-aware)."""
    return OrderedLock(name, rank)
