"""The kernel-backend contract: edge plans and the backend interface.

A *backend* owns one execution strategy for the kernels' inner
gather→reduce step.  For each window (or SpMM batch) a kernel asks the
backend for an :class:`EdgePlan` over the resolved edge list — the masked
structure or the compacted pack, whichever ``edge_path`` chose — and then
calls the plan once per power iteration.  The plan is where a backend may
precompute per-window acceleration structures (the PCPM destination
binning); the call sequence inside ``propagate`` is required to be
**bitwise-identical** to the reference flat pass::

    c = np.take(w, col)          # gather per-source shares
    c *= mask                    # optional: zero inactive stored events
    c *= weights                 # optional: per-edge multiplicities
    y = segment_sum_ordered(c, rows, n_rows)

``segment_sum_ordered`` accumulates strictly sequentially per destination,
and the row ids handed to plans are grouped by destination, so any
destination-partitioned schedule that preserves within-destination order
reproduces the reference bitwise (the PR 5 zero-insertion argument).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["EdgePlan", "KernelBackend"]


class EdgePlan:
    """A per-window propagation plan over one fixed edge list.

    Attributes
    ----------
    col:
        ``(n_edges,)`` source vertex per edge (gather indices).
    rows:
        ``(n_edges,)`` destination vertex per edge, grouped by
        destination (non-decreasing for the pull kernels).
    n_rows:
        Output vector length (number of vertices).
    n_edges:
        Edge count this plan traverses per iteration.
    """

    def __init__(
        self, col: np.ndarray, rows: np.ndarray, n_rows: int
    ) -> None:
        self.col = col
        self.rows = rows
        self.n_rows = int(n_rows)
        self.n_edges = int(col.shape[0])

    def propagate(
        self,
        w: np.ndarray,
        mask: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
        contrib: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One gather→reduce pass for a single rank vector.

        Parameters
        ----------
        w:
            ``(n_rows,)`` per-source share vector (``x * inv_outdeg``).
        mask:
            Optional ``(n_edges,)`` mask zeroing inactive stored events
            (the masked edge path; ``None`` for compacted edge lists).
        weights:
            Optional ``(n_edges,)`` per-edge multiplicities (the weighted
            kernel), applied after the mask.
        out:
            Optional ``(n_rows,)`` float64 result buffer, fully
            overwritten (a workspace rank buffer in the hot kernels).
        contrib:
            Optional ``(n_edges,)`` float64 gather scratch; allocated per
            call when absent.
        """
        raise NotImplementedError

    def propagate_batch(
        self,
        W: np.ndarray,
        active: np.ndarray,
        out: Optional[np.ndarray] = None,
        contrib: Optional[np.ndarray] = None,
        scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One gather→reduce pass for k stacked rank vectors (SpMM).

        ``W`` is ``(n_rows, k)``; ``active`` the ``(n_edges, k)``
        per-column activity mask; ``out``/``contrib``/``scratch`` mirror
        the 1-D variant (``scratch`` stages strided columns for the
        sequential reduce).
        """
        raise NotImplementedError


class KernelBackend:
    """Factory of :class:`EdgePlan` instances for one execution strategy.

    Attributes
    ----------
    name:
        Registry name of the strategy actually executing (``"numpy"``,
        ``"pcpm"``, ``"numba"``).
    """

    name = "abstract"

    def make_plan(
        self,
        col: np.ndarray,
        rows: np.ndarray,
        n_rows: int,
        workspace=None,
        key: str = "plan",
        capacity: Optional[int] = None,
    ) -> EdgePlan:
        """Build the per-window plan for one resolved edge list.

        ``workspace``/``key``/``capacity`` let backends pool their
        precomputed per-edge arrays the way the kernels pool their
        iteration scratch: ``capacity`` is the structure's nnz upper
        bound, so a pooled buffer allocated once serves every window of a
        chain sliced to the current edge count.
        """
        raise NotImplementedError

    def pb_bin_width(self, n_vertices: int, n_bins: int) -> int:
        """Destination-bin width for the propagation-blocking kernel.

        PB is the push twin of the pull binning: the default honours the
        caller's requested bin count, while cache-budgeted backends
        override this to derive the width from their partition size.
        """
        return -(-max(n_vertices, 1) // max(n_bins, 1))
