"""Backend registry and the kernels' ``backend="auto"`` resolution.

Mirrors the ``edge_path`` machinery: :func:`resolve_backend` turns
``PagerankConfig.backend`` into a concrete :class:`KernelBackend`
instance, asking :func:`repro.parallel.cost_model.choose_backend` when the
config says ``"auto"``.  The cost model decides between the *strategies*
``"numpy"`` and ``"pcpm"``; when it picks the partitioned strategy and
numba is importable, the registry upgrades to the JIT implementation
(same binning, fused reduce).

The two knobs compose: the kernels resolve ``edge_path`` first and hand
this module the edge count actually traversed per iteration (``nnz`` for
masked, ``|E_w|`` for compacted), so the backend decision prices the
structure the iteration will really stream.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import ValidationError
from repro.pagerank.backends.base import KernelBackend
from repro.pagerank.backends.numpy_backend import NumpyBackend
from repro.pagerank.backends.pcpm import DEFAULT_CACHE_BUDGET, PcpmBackend
from repro.pagerank.backends.numba_backend import (
    NumbaBackend,
    numba_available,
)

__all__ = [
    "BACKEND_NAMES",
    "backend_availability",
    "create_backend",
    "resolve_backend",
    "validate_backend_name",
]

#: every name ``PagerankConfig.backend`` / ``run --backend`` accepts
BACKEND_NAMES = ("auto", "numpy", "pcpm", "numba")

_CLASSES = {
    "numpy": NumpyBackend,
    "pcpm": PcpmBackend,
    "numba": NumbaBackend,
}


def validate_backend_name(name: str) -> str:
    """Shared validation for config/CLI/context surfaces."""
    if name not in BACKEND_NAMES:
        raise ValidationError(
            f"backend must be one of {BACKEND_NAMES}, got {name!r}"
        )
    return name


def create_backend(
    name: str, cache_budget: int = DEFAULT_CACHE_BUDGET
) -> KernelBackend:
    """Instantiate a concrete (non-``auto``) backend by registry name.

    ``"numba"`` is always constructible — without numba installed its
    plans transparently run the NumPy per-partition path (the graceful
    degradation the tests pin down).
    """
    if name == "numpy":
        return NumpyBackend()
    if name in ("pcpm", "numba"):
        return _CLASSES[name](cache_budget)
    raise ValidationError(
        f"cannot instantiate backend {name!r}; "
        f"concrete names are {tuple(_CLASSES)}"
    )


def backend_availability() -> Dict[str, Tuple[bool, str]]:
    """``{name: (available, note)}`` for every concrete backend.

    The CLI ``backends`` subcommand renders this; ``numba`` reports
    availability of the JIT itself, with a note that the name still
    resolves (degraded) when the import fails.
    """
    has_numba = numba_available()
    return {
        "numpy": (True, "flat full-width gather/reduce (reference)"),
        "pcpm": (
            True,
            "destination-partitioned NumPy reduce "
            f"(default cache budget {DEFAULT_CACHE_BUDGET} B)",
        ),
        "numba": (
            has_numba,
            "JIT-fused per-partition reduce"
            if has_numba
            else "numba not importable; degrades to the pcpm NumPy reduce",
        ),
    }


def resolve_backend(
    config,
    n_edges: int,
    n_vertices: int,
    iteration_hint: Optional[int] = None,
) -> KernelBackend:
    """Turn ``config.backend`` into a concrete backend instance.

    ``n_edges`` must be the per-iteration traversed edge count *after*
    the ``edge_path`` resolution.  ``"auto"`` asks the cost model with
    the same iteration estimate policy as ``resolve_edge_path`` (the
    chain's ``iteration_hint`` when positive, else the conservative
    default capped by the iteration budget).  Numba's availability is
    passed as the model's ``fused`` flag — without the JIT the
    partitioned strategy has no locality win to amortize its binning
    (measured; see the cost-model docstring), so ``"auto"`` resolves to
    ``"numpy"`` on JIT-less hosts and a ``"pcpm"`` verdict always
    upgrades to the numba implementation.
    """
    name = config.backend
    if name != "auto":
        return create_backend(name, config.cache_budget)
    # lazy import: repro.parallel pulls in the executor stack; the kernels
    # must stay importable without it at module-import time
    from repro.parallel.cost_model import (
        DEFAULT_EXPECTED_ITERATIONS,
        choose_backend,
    )

    if iteration_hint is not None and iteration_hint > 0:
        expected = min(iteration_hint, config.max_iterations)
    else:
        expected = min(config.max_iterations, DEFAULT_EXPECTED_ITERATIONS)
    has_jit = numba_available()
    strategy = choose_backend(
        n_edges, n_vertices, expected, config.cache_budget, fused=has_jit
    )
    if strategy == "pcpm" and has_jit:
        strategy = "numba"
    return create_backend(strategy, config.cache_budget)
