"""Optional numba-JIT variant of the partition-centric backend.

Identical binning to :class:`~repro.pagerank.backends.pcpm.PcpmBackend`;
when numba is importable the per-partition 1-D reduce is a JIT-compiled
fused gather→mask→weight→accumulate loop (realizing the locality win the
NumPy slices can only approximate).  The scalar loop adds each edge's
contribution to its destination **in array order** — exactly the
accumulation order of ``np.bincount`` — so the result stays
bitwise-identical to every other backend.

Without numba (this container does not ship it) the backend **degrades
gracefully**: plans fall back to the inherited NumPy per-partition path,
``numba_available()`` reports ``False``, and nothing raises.  The batched
(SpMM) propagation always uses the inherited path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.pagerank.backends.pcpm import (
    DEFAULT_CACHE_BUDGET,
    PcpmBackend,
    PcpmPlan,
)

__all__ = ["NumbaBackend", "NumbaPlan", "numba_available"]

#: lazily compiled kernel cache: ``checked`` flips after the first import
#: attempt so a missing numba costs one failed import per process
_JIT = {"checked": False, "pull_1d": None}

_EMPTY_F64 = np.zeros(0, dtype=np.float64)
_EMPTY_BOOL = np.zeros(0, dtype=np.bool_)


def numba_available() -> bool:
    """True iff ``import numba`` succeeds in this environment."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def _load_pull_1d():
    """Compile (once) the fused per-partition pull loop; None if numba
    is absent or compilation fails."""
    if _JIT["checked"]:
        return _JIT["pull_1d"]
    _JIT["checked"] = True
    try:
        import numba
    except Exception:
        return None

    @numba.njit(fastmath=False)
    def pull_1d(col, dst_local, w, mask, weights, has_mask, has_weights,
                seg):
        seg[:] = 0.0
        # lint: disable=csr-python-loop — inside @njit the scalar loop is compiled, not interpreted
        for e in range(col.shape[0]):
            v = w[col[e]]
            if has_mask:
                v = v * mask[e]
            if has_weights:
                v = v * weights[e]
            seg[dst_local[e]] += v

    _JIT["pull_1d"] = pull_1d
    return pull_1d


class NumbaPlan(PcpmPlan):
    """PCPM plan whose 1-D propagation runs the fused JIT loop."""

    def propagate(
        self,
        w: np.ndarray,
        mask: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
        contrib: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        pull_1d = _load_pull_1d()
        if pull_1d is None:
            return super().propagate(
                w, mask=mask, weights=weights, out=out, contrib=contrib
            )
        n = self.n_rows
        if out is None:
            out = np.empty(n, dtype=np.float64)
        width = self.width
        pstart = self.pstart
        mask_arr = _EMPTY_BOOL if mask is None else mask
        weights_arr = _EMPTY_F64 if weights is None else weights
        for p in range(self.n_parts):
            lo, hi = int(pstart[p]), int(pstart[p + 1])
            base = p * width
            wd = min(width, n - base)
            seg = out[base: base + wd]
            if lo == hi:
                seg[:] = 0.0
                continue
            pull_1d(
                self.col[lo:hi], self.dst_local[lo:hi], w,
                mask_arr[lo:hi] if mask is not None else _EMPTY_BOOL,
                weights_arr[lo:hi] if weights is not None else _EMPTY_F64,
                mask is not None, weights is not None, seg,
            )
        return out


class NumbaBackend(PcpmBackend):
    """Cache-budgeted PCPM backend with the JIT-fused 1-D reduce."""

    name = "numba"

    def __init__(self, cache_budget: int = DEFAULT_CACHE_BUDGET) -> None:
        super().__init__(cache_budget)

    def make_plan(
        self,
        col: np.ndarray,
        rows: np.ndarray,
        n_rows: int,
        workspace=None,
        key: str = "plan",
        capacity: Optional[int] = None,
    ) -> PcpmPlan:
        return NumbaPlan(
            col, rows, n_rows, self.width,
            workspace=workspace, key=key, capacity=capacity,
        )
