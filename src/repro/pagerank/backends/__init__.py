"""Pluggable kernel backends for the per-iteration propagation step.

Every PageRank kernel in the library performs the same inner step each
power iteration: gather per-source shares along the window's edge list and
reduce them per destination (``segment_sum_ordered``).  This package
factors that step behind a small registry so alternative *execution
strategies* — the flat NumPy pass, a PCPM-style destination-partitioned
pass (Lakhotia et al.), and an optional numba-JIT variant — can be swapped
without touching the kernels, all **bitwise-identical** by construction.

``PagerankConfig.backend`` selects one (``"auto"`` asks the cost model,
composing with ``edge_path``); :func:`resolve_backend` is the kernels'
entry point, mirroring ``resolve_edge_path``.
"""

from repro.pagerank.backends.base import EdgePlan, KernelBackend
from repro.pagerank.backends.numpy_backend import NumpyBackend
from repro.pagerank.backends.pcpm import PcpmBackend, accumulate_binned
from repro.pagerank.backends.numba_backend import NumbaBackend, numba_available
from repro.pagerank.backends.registry import (
    BACKEND_NAMES,
    backend_availability,
    create_backend,
    resolve_backend,
    validate_backend_name,
)

__all__ = [
    "BACKEND_NAMES",
    "EdgePlan",
    "KernelBackend",
    "NumbaBackend",
    "NumpyBackend",
    "PcpmBackend",
    "accumulate_binned",
    "backend_availability",
    "create_backend",
    "numba_available",
    "resolve_backend",
    "validate_backend_name",
]
