"""The default flat NumPy backend.

One full-width gather + one full-width sequential segment reduction per
iteration — exactly the op sequence the kernels inlined before the backend
registry existed, so this backend *is* the bitwise reference the others
are tested against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.pagerank.backends.base import EdgePlan, KernelBackend
from repro.utils.segments import segment_sum_ordered

__all__ = ["NumpyBackend", "NumpyPlan"]


class NumpyPlan(EdgePlan):
    """Flat plan: no precomputation beyond holding the edge list."""

    def propagate(
        self,
        w: np.ndarray,
        mask: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
        contrib: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if contrib is None:
            c = np.take(w, self.col)
        else:
            c = contrib
            np.take(w, self.col, out=c)
        if mask is not None:
            c *= mask
        if weights is not None:
            c *= weights
        return segment_sum_ordered(c, self.rows, self.n_rows, out=out)

    def propagate_batch(
        self,
        W: np.ndarray,
        active: np.ndarray,
        out: Optional[np.ndarray] = None,
        contrib: Optional[np.ndarray] = None,
        scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if contrib is None:
            C = np.take(W, self.col, axis=0)
        else:
            C = contrib
            np.take(W, self.col, axis=0, out=C)
        C *= active
        return segment_sum_ordered(
            C, self.rows, self.n_rows, out=out, scratch=scratch
        )


class NumpyBackend(KernelBackend):
    """Backend producing :class:`NumpyPlan` (the bitwise reference)."""

    name = "numpy"

    def make_plan(
        self,
        col: np.ndarray,
        rows: np.ndarray,
        n_rows: int,
        workspace=None,
        key: str = "plan",
        capacity: Optional[int] = None,
    ) -> NumpyPlan:
        return NumpyPlan(col, rows, n_rows)
