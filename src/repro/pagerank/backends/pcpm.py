"""Partition-centric (PCPM-style) propagation backend.

Lakhotia, Kannan & Prasanna, "Accelerating PageRank using Partition-Centric
Processing" (USENIX ATC'18): bin destination updates into vertex partitions
sized so each partition's slice of the rank vector fits a cache budget,
then reduce one partition at a time — the scattered full-width random
traffic of a flat pass becomes per-partition streaming passes.

The pull edge lists the kernels hand us are already **grouped by
destination** (the in-CSR row ids, and every compacted pack preserves that
order), so the binning needs no permutation at all: partition ``p`` owns
the contiguous edge span ``pstart[p]:pstart[p+1]`` found by one
``searchsorted`` over the row ids, and the per-partition local destination
is just ``rows % width``.  That is the per-window precomputation
(:meth:`PcpmBackend.make_plan`, workspace-pooled like compaction); each
iteration then runs gather → per-partition sequential ``bincount`` reduce.

**Bitwise identity** with the flat backend: ``np.bincount`` accumulates
strictly sequentially in array order, all edges of one destination live in
exactly one partition, and slicing an elementwise gather/multiply does not
change its values — so every destination receives the same additions in
the same order as the reference full-width reduction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ValidationError
from repro.pagerank.backends.base import EdgePlan, KernelBackend
from repro.utils.segments import segment_sum_ordered

__all__ = [
    "DEFAULT_CACHE_BUDGET",
    "PcpmBackend",
    "PcpmPlan",
    "accumulate_binned",
]

#: default per-partition rank-slice budget in bytes: 256 KiB, the typical
#: per-core L2 share — 32768 float64 vertices per partition
DEFAULT_CACHE_BUDGET = 262_144


def accumulate_binned(
    contrib: np.ndarray,
    dst: np.ndarray,
    bin_starts: np.ndarray,
    bin_ends: np.ndarray,
    bin_width: int,
    out: np.ndarray,
) -> np.ndarray:
    """Per-bin sequential accumulation shared with the PB kernel.

    ``contrib``/``dst`` are grouped by destination bin (bin ``b`` spans
    ``bin_starts[b]:bin_ends[b]``); each bin's sums land in
    ``out[b*bin_width : b*bin_width + width]`` additively, so ``out`` must
    arrive zero-filled.  ``np.bincount`` keeps the within-destination
    accumulation strictly sequential, which is why both the PB kernel and
    this backend are bitwise-invariant in the bin width.
    """
    n = out.shape[0]
    for b in range(bin_starts.size):
        lo, hi = int(bin_starts[b]), int(bin_ends[b])
        if lo == hi:
            continue
        base = b * bin_width
        width = min(bin_width, n - base)
        out[base: base + width] += np.bincount(
            dst[lo:hi] - base, weights=contrib[lo:hi], minlength=width
        )
    return out


class PcpmPlan(EdgePlan):
    """Destination-partitioned plan over one destination-grouped edge list.

    Attributes
    ----------
    width:
        Vertices per partition (``cache_budget // 8``).
    n_parts:
        Partition count ``ceil(n_rows / width)``.
    pstart:
        ``(n_parts + 1,)`` edge-span boundaries per partition.
    dst_local:
        ``(n_edges,)`` partition-local destination ids (``rows % width``).
    """

    def __init__(
        self,
        col: np.ndarray,
        rows: np.ndarray,
        n_rows: int,
        width: int,
        workspace=None,
        key: str = "plan",
        capacity: Optional[int] = None,
    ) -> None:
        super().__init__(col, rows, n_rows)
        if rows.size and np.any(rows[1:] < rows[:-1]):
            raise ValidationError(
                "PCPM plans require destination-grouped (non-decreasing) "
                "row ids; the pull edge lists satisfy this by construction"
            )
        self.width = int(width)
        self.n_parts = -(-self.n_rows // self.width)
        bases = np.arange(self.n_parts + 1, dtype=np.int64) * self.width
        self.pstart = np.searchsorted(rows, bases)
        if workspace is not None and capacity is not None:
            buf = workspace.buffer(
                key + ".dst_local", (int(capacity),), np.int64
            )[: self.n_edges]
            np.mod(rows, self.width, out=buf, casting="unsafe")
            self.dst_local = buf
        else:
            self.dst_local = rows % self.width

    def propagate(
        self,
        w: np.ndarray,
        mask: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
        contrib: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        n = self.n_rows
        if out is None:
            out = np.empty(n, dtype=np.float64)
        if contrib is None and self.n_edges:
            contrib = np.empty(self.n_edges, dtype=np.float64)
        width = self.width
        pstart = self.pstart
        for p in range(self.n_parts):
            lo, hi = int(pstart[p]), int(pstart[p + 1])
            base = p * width
            wd = min(width, n - base)
            if lo == hi:
                out[base: base + wd] = 0.0
                continue
            cs = contrib[lo:hi]
            np.take(w, self.col[lo:hi], out=cs)
            if mask is not None:
                cs *= mask[lo:hi]
            if weights is not None:
                cs *= weights[lo:hi]
            out[base: base + wd] = np.bincount(
                self.dst_local[lo:hi], weights=cs, minlength=wd
            )
        return out

    def propagate_batch(
        self,
        W: np.ndarray,
        active: np.ndarray,
        out: Optional[np.ndarray] = None,
        contrib: Optional[np.ndarray] = None,
        scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        n = self.n_rows
        k = W.shape[1]
        if out is None:
            out = np.empty((n, k), dtype=np.float64)
        width = self.width
        pstart = self.pstart
        for p in range(self.n_parts):
            lo, hi = int(pstart[p]), int(pstart[p + 1])
            base = p * width
            wd = min(width, n - base)
            block = out[base: base + wd]
            if lo == hi:
                block[...] = 0.0
                continue
            if contrib is None:
                Cp = np.take(W, self.col[lo:hi], axis=0)
            else:
                Cp = contrib[lo:hi]
                np.take(W, self.col[lo:hi], axis=0, out=Cp)
            Cp *= active[lo:hi]
            segment_sum_ordered(
                Cp, self.dst_local[lo:hi], wd, out=block,
                scratch=None if scratch is None else scratch[lo:hi],
            )
        return out


class PcpmBackend(KernelBackend):
    """Backend producing :class:`PcpmPlan` under a cache budget."""

    name = "pcpm"

    def __init__(self, cache_budget: int = DEFAULT_CACHE_BUDGET) -> None:
        if cache_budget <= 0:
            raise ValidationError(
                f"cache_budget must be > 0 bytes, got {cache_budget}"
            )
        self.cache_budget = int(cache_budget)
        #: vertices whose float64 rank entries fill the cache budget
        self.width = max(1, self.cache_budget // 8)

    def make_plan(
        self,
        col: np.ndarray,
        rows: np.ndarray,
        n_rows: int,
        workspace=None,
        key: str = "plan",
        capacity: Optional[int] = None,
    ) -> PcpmPlan:
        return PcpmPlan(
            col, rows, n_rows, self.width,
            workspace=workspace, key=key, capacity=capacity,
        )

    def pb_bin_width(self, n_vertices: int, n_bins: int) -> int:
        """PB bins adopt the cache-budgeted partition width (the
        requested bin count is superseded by the budget)."""
        return min(self.width, max(n_vertices, 1))
