"""PageRank kernels.

* :mod:`repro.pagerank.config` — solver parameters (teleportation alpha,
  tolerance, iteration cap, dangling-mass policy).
* :mod:`repro.pagerank.reference` — slow, obviously-correct implementations
  used as test oracles.
* :mod:`repro.pagerank.spmv` — the pull-style power iteration over a
  masked temporal CSR window (the paper's SpMV kernel).
* :mod:`repro.pagerank.init` — full and partial initialization (eq. 4).
* :mod:`repro.pagerank.spmm` — the SpMM-inspired multi-window kernel
  (Section 4.4).
* :mod:`repro.pagerank.workspace` — reusable kernel scratch buffers shared
  across the windows of one partial-initialization chain.
* :mod:`repro.pagerank.compaction` — per-window active-edge packing (the
  literal Θ(|E_w|) iteration) and the masked/compacted path resolution.
* :mod:`repro.pagerank.backends` — pluggable execution strategies for the
  per-iteration gather→reduce step (flat NumPy, PCPM destination
  partitioning, optional numba JIT) behind one bitwise-identical contract.
* :mod:`repro.pagerank.incremental` — warm-startable power iteration on a
  simple CSR graph (offline cold start, streaming warm start).
"""

from repro.pagerank.backends import (
    backend_availability,
    create_backend,
    resolve_backend,
)
from repro.pagerank.compaction import (
    CompactedPull,
    CompactedUnion,
    compact_pull,
    compact_pull_union,
    compact_pull_weighted,
    compact_push,
    resolve_edge_path,
)
from repro.pagerank.config import PagerankConfig
from repro.pagerank.result import PagerankResult, BatchPagerankResult, WorkStats
from repro.pagerank.reference import (
    pagerank_dense_reference,
    pagerank_csr_reference,
)
from repro.pagerank.spmv import pagerank_window
from repro.pagerank.init import full_initialization, partial_initialization
from repro.pagerank.spmm import pagerank_windows_spmm
from repro.pagerank.weighted import pagerank_window_weighted, window_edge_weights
from repro.pagerank.propagation_blocking import pagerank_window_pb
from repro.pagerank.workspace import Workspace
from repro.pagerank.incremental import csr_pull_arrays, incremental_pagerank

__all__ = [
    "Workspace",
    "incremental_pagerank",
    "csr_pull_arrays",
    "PagerankConfig",
    "PagerankResult",
    "BatchPagerankResult",
    "WorkStats",
    "pagerank_dense_reference",
    "pagerank_csr_reference",
    "pagerank_window",
    "full_initialization",
    "partial_initialization",
    "pagerank_windows_spmm",
    "pagerank_window_weighted",
    "window_edge_weights",
    "pagerank_window_pb",
    "CompactedPull",
    "CompactedUnion",
    "compact_pull",
    "compact_pull_weighted",
    "compact_pull_union",
    "compact_push",
    "resolve_edge_path",
    "backend_availability",
    "create_backend",
    "resolve_backend",
]
