"""Slow, obviously-correct PageRank implementations used as test oracles.

Two references:

* :func:`pagerank_dense_reference` — builds the dense transition matrix and
  iterates it; O(V^2) memory, only for tiny graphs.
* :func:`pagerank_csr_reference` — a per-vertex Python-loop power iteration
  on a :class:`~repro.graph.csr.CSRGraph`; O(V + E) but interpreter-slow.

Both restrict the computation to an explicit *active vertex set* (the
paper computes each window's PageRank over V_i, the vertices present in
that window) and implement the same two dangling policies as the fast
kernels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConvergenceError, ValidationError
from repro.graph.csr import CSRGraph
from repro.pagerank.config import PagerankConfig
from repro.pagerank.result import PagerankResult, WorkStats

__all__ = ["pagerank_dense_reference", "pagerank_csr_reference"]


def _active_mask(graph: CSRGraph, active: Optional[np.ndarray]) -> np.ndarray:
    if active is not None:
        mask = np.asarray(active, dtype=bool)
        if mask.shape != (graph.n_vertices,):
            raise ValidationError("active mask must have n_vertices entries")
        return mask
    mask = np.zeros(graph.n_vertices, dtype=bool)
    src, dst = graph.edges()
    mask[src] = True
    mask[dst] = True
    return mask


def pagerank_dense_reference(
    graph: CSRGraph,
    config: PagerankConfig = PagerankConfig(),
    active: Optional[np.ndarray] = None,
) -> PagerankResult:
    """Dense-matrix power iteration (test oracle for tiny graphs)."""
    n = graph.n_vertices
    mask = _active_mask(graph, active)
    n_active = int(mask.sum())
    if n_active == 0:
        return PagerankResult(
            values=np.zeros(n, dtype=np.float64), iterations=0, converged=True, residual=0.0
        )

    # column-stochastic transition restricted to active vertices
    P = np.zeros((n, n), dtype=np.float64)
    src, dst = graph.edges()
    deg = graph.out_degrees().astype(np.float64)
    for u, v in zip(src, dst):
        P[v, u] = 1.0 / deg[u]

    x = np.where(mask, 1.0 / n_active, 0.0)
    alpha = config.alpha
    residual = np.inf
    for it in range(1, config.max_iterations + 1):
        y = (1.0 - alpha) * (P @ x)
        if config.dangling == "uniform":
            dangling_mass = x[mask & (deg == 0)].sum()
            y[mask] += (1.0 - alpha) * dangling_mass / n_active
        y[mask] += alpha / n_active
        y[~mask] = 0.0
        residual = float(np.abs(y - x).sum())
        x = y
        if residual < config.tolerance:
            return PagerankResult(x, it, True, residual)
    if config.strict:
        raise ConvergenceError(
            f"dense reference did not converge in {config.max_iterations} "
            f"iterations (residual {residual:.3e})"
        )
    return PagerankResult(x, config.max_iterations, False, residual)


def pagerank_csr_reference(
    graph: CSRGraph,
    config: PagerankConfig = PagerankConfig(),
    active: Optional[np.ndarray] = None,
    x0: Optional[np.ndarray] = None,
) -> PagerankResult:
    """Per-vertex Python-loop push-style power iteration (test oracle)."""
    n = graph.n_vertices
    mask = _active_mask(graph, active)
    n_active = int(mask.sum())
    if n_active == 0:
        return PagerankResult(
            values=np.zeros(n, dtype=np.float64), iterations=0, converged=True, residual=0.0
        )

    deg = graph.out_degrees()
    if x0 is not None:
        x = np.asarray(x0, dtype=np.float64).copy()
    else:
        x = np.where(mask, 1.0 / n_active, 0.0)

    alpha = config.alpha
    work = WorkStats()
    residual = np.inf
    for it in range(1, config.max_iterations + 1):
        y = np.zeros(n, dtype=np.float64)
        dangling_mass = 0.0
        for u in range(n):
            if not mask[u]:
                continue
            if deg[u] == 0:
                dangling_mass += x[u]
                continue
            share = x[u] / deg[u]
            for v in graph.neighbors(u):
                y[v] += share
        y *= 1.0 - alpha
        if config.dangling == "uniform":
            y[mask] += (1.0 - alpha) * dangling_mass / n_active
        y[mask] += alpha / n_active
        y[~mask] = 0.0

        residual = float(np.abs(y - x).sum())
        x = y
        work.iterations += 1
        work.edge_traversals += graph.n_edges
        work.active_edge_traversals += graph.n_edges
        work.vertex_ops += n_active
        if residual < config.tolerance:
            return PagerankResult(x, it, True, residual, work)
    if config.strict:
        raise ConvergenceError(
            f"CSR reference did not converge in {config.max_iterations} "
            f"iterations (residual {residual:.3e})"
        )
    return PagerankResult(x, config.max_iterations, False, residual, work)
