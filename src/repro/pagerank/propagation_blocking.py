"""Propagation-blocking PageRank (Beamer, Asanović & Patterson, IPDPS'17).

The paper cites propagation blocking as a compatible communication
optimization it does not use ("we believe it is compatible").  This module
implements it for the temporal window kernels: the push-style iteration is
split into a **binning** phase — per-edge contributions are written into
destination-range bins that each fit in cache — and an **accumulation**
phase that reduces one bin at a time, converting the scattered random
writes of a plain push into two streaming passes.

On real hardware this wins when the PageRank vector exceeds cache; a NumPy
implementation cannot expose that cache effect, but the kernel is
algorithmically faithful (two phases, contiguous per-bin accumulation) and
produces bit-identical iterations to the pull kernel, which the tests and
the ablation bench verify.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.errors import ConvergenceError, ValidationError
from repro.graph.temporal_csr import WindowView
from repro.pagerank.backends import resolve_backend
from repro.pagerank.backends.pcpm import accumulate_binned
from repro.pagerank.compaction import compact_push
from repro.pagerank.config import PagerankConfig
from repro.pagerank.init import full_initialization
from repro.pagerank.result import PagerankResult, WorkStats

__all__ = ["PropagationBlockingKernel", "pagerank_window_pb"]


class PropagationBlockingKernel:
    """Reusable binned-push kernel state for one window view.

    The bin permutation is computed once per window: out-oriented active
    edges are grouped by destination bin (``dst >> log2(bin_width)``), so
    each iteration only gathers, scatters into bin-contiguous buffers, and
    accumulates bin by bin.

    ``backend`` optionally supplies the destination-bin width policy
    (:meth:`~repro.pagerank.backends.base.KernelBackend.pb_bin_width`):
    the cache-budgeted backends size PB's bins exactly like their pull
    partitions, so one ``cache_budget`` knob governs both directions.
    The per-bin accumulation itself is the shared
    :func:`~repro.pagerank.backends.pcpm.accumulate_binned`, and the
    output is bitwise-invariant in the bin width (each destination lives
    in one bin; the stable sort preserves within-destination order).
    """

    def __init__(
        self, view: WindowView, n_bins: int = 16, workspace=None,
        backend=None,
    ) -> None:
        if n_bins <= 0:
            raise ValidationError("n_bins must be > 0")
        self.view = view
        self.workspace = workspace
        adjacency = view.adjacency

        # PB is inherently compacted: it always packs the window's active
        # out-edges (workspace-backed when one is supplied); the argsort
        # below then produces owned, bin-grouped copies of the slices
        self.src, self.dst = compact_push(view, workspace=workspace)
        self.n_vertices = adjacency.n_vertices

        if backend is not None:
            bin_width = max(
                1, backend.pb_bin_width(self.n_vertices, n_bins)
            )
            self.n_bins = max(1, -(-self.n_vertices // bin_width))
        else:
            self.n_bins = min(n_bins, max(self.n_vertices, 1))
            bin_width = -(-self.n_vertices // self.n_bins)
        bins = self.dst // max(bin_width, 1)
        order = np.argsort(bins, kind="stable")
        self.src = self.src[order]
        self.dst = self.dst[order]
        bins = bins[order]
        # bin boundaries in the permuted edge array
        self.bin_starts = np.searchsorted(bins, np.arange(self.n_bins))
        self.bin_ends = np.searchsorted(
            bins, np.arange(self.n_bins), side="right"
        )
        self.bin_width = bin_width

    def iterate(self, w: np.ndarray, out: np.ndarray = None) -> np.ndarray:
        """One push phase: ``y[v] = Σ_{(u, v) active} w[u]`` via binning.

        ``w`` is the per-source share vector (``x * inv_outdeg``).  ``out``
        optionally receives the result in place (fully overwritten); with a
        kernel workspace the gather buffer is recycled across iterations.
        """
        # phase 1: binning — one streaming gather into bin-grouped buffers
        ws = self.workspace
        if ws is None:
            contrib = w[self.src]
        else:
            contrib = ws.buffer(
                "pb.contrib", (self.src.size,), np.float64
            )
            np.take(w, self.src, out=contrib)
        # phase 2: per-bin accumulation — each bin's destination range is
        # contiguous and cache-sized (shared with the PCPM pull backend)
        if out is None:
            y = np.zeros(self.n_vertices, dtype=np.float64)
        else:
            y = out
            y.fill(0)
        return accumulate_binned(
            contrib, self.dst, self.bin_starts, self.bin_ends,
            self.bin_width, y,
        )


def pagerank_window_pb(
    view: WindowView,
    config: PagerankConfig = PagerankConfig(),
    x0: Optional[np.ndarray] = None,
    n_bins: int = 16,
    kernel: Optional[PropagationBlockingKernel] = None,
    workspace=None,
) -> PagerankResult:
    """Window PageRank with the propagation-blocking push kernel.

    Produces the same iterates as :func:`~repro.pagerank.spmv.
    pagerank_window` (the reduction order differs only within bins).
    ``workspace`` recycles the gather and rank scratch across windows;
    returned values are always freshly owned.
    """
    n = view.adjacency.n_vertices
    n_active = view.n_active_vertices
    if n_active == 0:
        return PagerankResult(
            values=np.zeros(n, dtype=np.float64), iterations=0, converged=True, residual=0.0
        )
    ws = workspace
    work = WorkStats()
    if kernel is None:
        # the backend only contributes its bin-width policy here; the PB
        # push is already destination-binned by construction
        backend = resolve_backend(config, view.n_active_edges, n, None)
        t_bin = time.perf_counter()
        kernel = PropagationBlockingKernel(
            view, n_bins=n_bins, workspace=ws, backend=backend
        )
        work.binning_seconds += time.perf_counter() - t_bin
    elif ws is None:
        ws = kernel.workspace

    inv_out = view.inverse_out_degrees()
    active_mask = view.active_vertices_mask
    # precomputed dangling index set: the boolean-mask formulation
    # re-scans and copies Θ(n) every iteration
    dangling_idx = np.flatnonzero(active_mask & (view.out_degrees == 0))

    if ws is not None:
        rank0 = ws.buffer("pb.rank0", (n,), np.float64)
        rank1 = ws.buffer("pb.rank1", (n,), np.float64)
        w_buf = ws.buffer("pb.w", (n,), np.float64)
        resid = ws.buffer("pb.resid", (n,), np.float64)
        dang_buf = ws.buffer("pb.dangling", (dangling_idx.size,), np.float64)

    if x0 is None:
        x = full_initialization(view)
    else:
        x = np.asarray(x0, dtype=np.float64)
        if x.shape != (n,):
            raise ValidationError(f"x0 must have shape ({n},)")
        x = x.copy() if ws is None else x
    if ws is not None:
        np.copyto(rank0, x)
        x = rank0

    alpha = config.alpha
    damping = config.damping
    teleport = alpha / n_active
    residual = np.inf

    for it in range(1, config.max_iterations + 1):
        t_prop = time.perf_counter()
        if ws is None:
            w = x * inv_out
            y = kernel.iterate(w)
        else:
            np.multiply(x, inv_out, out=w_buf)
            y = kernel.iterate(w_buf, out=rank1 if x is rank0 else rank0)
        work.propagate_seconds += time.perf_counter() - t_prop
        y *= damping
        if config.dangling == "uniform" and dangling_idx.size:
            if ws is None:
                dangling_mass = float(x[dangling_idx].sum())
            else:
                np.take(x, dangling_idx, out=dang_buf)
                dangling_mass = float(dang_buf.sum())
            if dangling_mass:
                y[active_mask] += damping * dangling_mass / n_active
        y[active_mask] += teleport
        y[~active_mask] = 0.0

        if ws is None:
            residual = float(np.abs(y - x).sum())
        else:
            np.subtract(y, x, out=resid)
            np.abs(resid, out=resid)
            residual = float(resid.sum())
        x = y
        work.iterations += 1
        work.edge_traversals += kernel.src.size
        work.active_edge_traversals += kernel.src.size
        work.vertex_ops += n_active
        if residual < config.tolerance:
            return PagerankResult(
                x if ws is None else x.copy(), it, True, residual, work
            )

    if config.strict:
        raise ConvergenceError(
            f"PB kernel did not converge in {config.max_iterations} "
            f"iterations (residual {residual:.3e})"
        )
    return PagerankResult(
        x if ws is None else x.copy(),
        config.max_iterations, False, residual, work,
    )
