"""The SpMV-style postmortem PageRank kernel.

One power iteration is a *pull* over the temporal CSR's in-orientation:

    y[v] = alpha/|V_i| + (1 - alpha) * Σ_{active in-edges (u, v)} x[u] / outdeg_i(u)

implemented as fully-vectorized NumPy (per the HPC-Python guides: gather +
masked multiply + a sequential segment sum; no Python-level edge loop):

    w       = x * inv_outdeg                         # per-source share
    contrib = where(dedup_mask, w[colA], 0)          # per-stored-event
    y       = segment_sum_ordered(contrib, rowA)     # per-destination

The reduction is :func:`~repro.utils.segments.segment_sum_ordered`
(strictly left-to-right within each destination), which is what makes the
two edge paths below bitwise-interchangeable — a pairwise ``reduceat``
would round differently depending on how many masked zeros pad each row.

The **masked** path traverses the whole stored structure (all ``nnz``
events of the multi-window graph) each iteration and zeroes inactive
events.  The **compacted** path (:mod:`repro.pagerank.compaction`) packs
the active deduped edges once per window and iterates over only the
Θ(|E_w|) packed arrays — bitwise-identical output, literal per-iteration
Θ(|E_w|) work.  ``config.edge_path`` selects between them (``"auto"``
asks the cost model, using the chain's ``iteration_hint`` when the driver
supplies one).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.errors import ConvergenceError, ValidationError
from repro.graph.temporal_csr import WindowView
from repro.pagerank.backends import resolve_backend
from repro.pagerank.compaction import resolve_edge_path
from repro.pagerank.config import PagerankConfig
from repro.pagerank.init import full_initialization
from repro.pagerank.result import PagerankResult, WorkStats

__all__ = ["pagerank_window"]


def pagerank_window(
    view: WindowView,
    config: PagerankConfig = PagerankConfig(),
    x0: Optional[np.ndarray] = None,
    workspace=None,
    iteration_hint: Optional[int] = None,
) -> PagerankResult:
    """Compute PageRank for one window of a temporal adjacency.

    Parameters
    ----------
    view:
        Precomputed :class:`~repro.graph.temporal_csr.WindowView` (activity
        masks, degrees, active vertex set).
    config:
        Solver parameters, including ``edge_path`` (see module docstring).
    x0:
        Optional initial vector (e.g. from
        :func:`~repro.pagerank.init.partial_initialization`); defaults to
        the uniform full initialization.
    workspace:
        Optional :class:`~repro.pagerank.workspace.Workspace` supplying the
        per-iteration scratch (share vector, Θ(nnz) contribution buffer,
        rank ping-pong pair, residual buffer) so a multi-window chain pays
        the allocator once instead of per window per iteration.  Results
        are bitwise-identical with and without a workspace; the returned
        values are always a freshly owned array.
    iteration_hint:
        Expected iteration count for the ``edge_path="auto"`` decision —
        drivers pass the chain's previous window count.

    Returns
    -------
    PagerankResult
        Values live in the view's (local) vertex space; inactive vertices
        hold exactly 0.
    """
    adjacency = view.adjacency
    n = adjacency.n_vertices
    n_active = view.n_active_vertices
    if n_active == 0:
        return PagerankResult(
            values=np.zeros(n, dtype=np.float64), iterations=0, converged=True, residual=0.0
        )

    in_csr = adjacency.in_csr
    dedup = view.in_dedup
    nnz = in_csr.nnz
    inv_out = view.inverse_out_degrees()
    active_mask = view.active_vertices_mask
    # precomputed dangling index set: the boolean-mask formulation
    # (`x[dangling].sum()`) re-scans and copies Θ(n) every iteration
    dangling_idx = np.flatnonzero(active_mask & (view.out_degrees == 0))

    path = resolve_edge_path(
        config, nnz, view.n_active_edges, n, iteration_hint
    )
    if path == "compacted":
        packed = view.compact_pull(workspace=workspace)
        it_col, it_rows = packed.col, packed.rows
        it_nnz = packed.n_edges
    else:
        it_col, it_rows = in_csr.col, in_csr.row_ids()
        it_nnz = nnz
    it_mask = dedup if path != "compacted" else None

    # the backend prices the edges the iteration actually streams (after
    # the edge_path decision) and precomputes its per-window plan once —
    # the PCPM destination binning, pooled like the compaction buffers
    work = WorkStats()
    backend = resolve_backend(config, it_nnz, n, iteration_hint)
    t_bin = time.perf_counter()
    plan = backend.make_plan(
        it_col, it_rows, n,
        workspace=workspace, key="spmv.plan", capacity=nnz,
    )
    work.binning_seconds += time.perf_counter() - t_bin

    ws = workspace
    if ws is not None:
        # ping-pong rank buffers: x and y alternate between the pair so an
        # iteration never reads the array it is writing
        rank0 = ws.buffer("spmv.rank0", (n,), np.float64)
        rank1 = ws.buffer("spmv.rank1", (n,), np.float64)
        w_buf = ws.buffer("spmv.w", (n,), np.float64)
        contrib = ws.buffer("spmv.contrib", (nnz,), np.float64)[:it_nnz]
        resid = ws.buffer("spmv.resid", (n,), np.float64)
        dang_buf = ws.buffer(
            "spmv.dangling", (dangling_idx.size,), np.float64
        )

    if x0 is None:
        x = full_initialization(view)
    else:
        x = np.asarray(x0, dtype=np.float64)
        if x.shape != (n,):
            raise ValidationError(
                f"x0 must have shape ({n},), got {x.shape}"
            )
        x = x.copy() if ws is None else x
    if ws is not None:
        np.copyto(rank0, x)
        x = rank0

    alpha = config.alpha
    damping = config.damping
    teleport = alpha / n_active
    residual = np.inf

    for it in range(1, config.max_iterations + 1):
        t_prop = time.perf_counter()
        if ws is None:
            w = x * inv_out
            y = plan.propagate(w, mask=it_mask)
        else:
            np.multiply(x, inv_out, out=w_buf)
            y = rank1 if x is rank0 else rank0
            plan.propagate(w_buf, mask=it_mask, out=y, contrib=contrib)
        work.propagate_seconds += time.perf_counter() - t_prop
        y *= damping
        if config.dangling == "uniform" and dangling_idx.size:
            if ws is None:
                dangling_mass = float(x[dangling_idx].sum())
            else:
                np.take(x, dangling_idx, out=dang_buf)
                dangling_mass = float(dang_buf.sum())
            if dangling_mass:
                y[active_mask] += damping * dangling_mass / n_active
        y[active_mask] += teleport
        y[~active_mask] = 0.0

        if ws is None:
            residual = float(np.abs(y - x).sum())
        else:
            np.subtract(y, x, out=resid)
            np.abs(resid, out=resid)
            residual = float(resid.sum())
        x = y
        work.iterations += 1
        work.edge_traversals += it_nnz
        work.active_edge_traversals += view.n_active_edges
        work.vertex_ops += n_active
        if residual < config.tolerance:
            return PagerankResult(
                x if ws is None else x.copy(), it, True, residual, work
            )

    if config.strict:
        raise ConvergenceError(
            f"window {view.window.index} did not converge in "
            f"{config.max_iterations} iterations (residual {residual:.3e})"
        )
    return PagerankResult(
        x if ws is None else x.copy(),
        config.max_iterations, False, residual, work,
    )
