"""Reusable kernel scratch buffers (the per-graph allocation amortizer).

A multi-window graph's windows form one sequential partial-initialization
chain, and every window's solve allocates the same transient arrays: the
active/dedup masks derived from the temporal CSR (Θ(nnz) booleans), the
per-event contribution buffer of each power iteration (Θ(nnz) floats — the
dominant allocation), and the per-vertex rank/degree scratch.  PCPM-style
PageRank work is memory-bound, so paying the allocator (and first-touch
page faults) for the same shapes once per window per iteration is pure
overhead.

:class:`Workspace` is a keyed buffer pool: ``buffer(key, shape, dtype)``
returns the same array on every call with matching shape/dtype and
reallocates only on mismatch.  One workspace serves one partial-init chain
(one thread/process task); it is deliberately **not** thread-safe — each
concurrent chain owns its own instance.

Contract for kernels that accept a workspace: *returned* values are always
freshly owned copies; only internal scratch lives in the pool.  Callers
therefore never observe aliasing between consecutive solves.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """A pool of named scratch arrays reused across windows of one chain.

    Attributes
    ----------
    hits / misses:
        Reuse counters: ``hits`` counts buffer requests served from the
        pool, ``misses`` counts (re)allocations.  A healthy partial-init
        chain converges to hit-rate ≈ 1 after the first window.
    """

    __slots__ = ("_buffers", "hits", "misses")

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def buffer(
        self,
        key: str,
        shape: Tuple[int, ...],
        dtype: np.dtype,
    ) -> np.ndarray:
        """An *uninitialized* scratch array for ``key``.

        Contents are whatever the previous user of the key left behind —
        callers must fully overwrite (use :meth:`zeros` otherwise).
        """
        if isinstance(shape, int):
            shape = (shape,)
        dtype = np.dtype(dtype)
        arr = self._buffers.get(key)
        if arr is None or arr.shape != shape or arr.dtype != dtype:
            arr = np.empty(shape, dtype=dtype)
            self._buffers[key] = arr
            self.misses += 1
        else:
            self.hits += 1
        return arr

    def zeros(
        self,
        key: str,
        shape: Tuple[int, ...],
        dtype: np.dtype,
    ) -> np.ndarray:
        """Like :meth:`buffer` but zero-filled."""
        arr = self.buffer(key, shape, dtype)
        arr.fill(0)
        return arr

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the pool."""
        return sum(a.nbytes for a in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)

    def clear(self) -> None:
        self._buffers.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Workspace(buffers={len(self._buffers)}, "
            f"bytes={self.nbytes}, hits={self.hits}, misses={self.misses})"
        )
