"""Per-window active-edge compaction (the literal Θ(|E_w|) iteration).

The masked kernels traverse **all stored nnz events** of their multi-window
graph every power iteration and zero out the inactive ones.  The paper's
complexity claim (Section 4.2, Figure 8) is asymptotic — partitioning
bounds nnz by the multi-window graph's |E_w| — but within one graph a
sparse window (small ``delta``, wide partition span: the Figure 9/10
regimes) still pays the full structure pass per iteration.

Compaction is the classic gather-scatter move from the GAP/STINGER CSR
lineage: pay one Θ(nnz) pass *per window* to pack the active deduplicated
in-edges into a dense ``(indptr_c, col_c, rows_c)`` triple, then iterate
over only the Θ(|E_w|) packed edges.  A boolean compress preserves order,
so the packed edges keep their **within-row order**; reducing them with
the sequential :func:`~repro.utils.segments.segment_sum_ordered` then
performs exactly the same additions in exactly the same order as the
masked path — the results are bitwise-identical (masked positions
contribute exact ``0.0``, and adding ``0.0`` to a non-negative
intermediate is exact in IEEE-754).  Note this identity genuinely needs
the *sequential* reduction: ``np.add.reduceat`` sums pairwise, so its
rounding depends on how many masked zeros pad each segment.

Selection between the two paths is the job of
:func:`repro.parallel.cost_model.choose_edge_path`: compaction amortizes
over the window's iterations, so it wins unless the window is almost fully
active or converges almost immediately.  ``PagerankConfig.edge_path``
pins the decision (``"masked"`` / ``"compacted"``) or delegates it
(``"auto"``, the default).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.utils.segments import lengths_to_indptr, segment_count

#: one-shot latch for the non-positive iteration_hint debug note (tests
#: reset it to observe the message again)
_NONPOSITIVE_HINT_NOTED = False

if TYPE_CHECKING:  # pragma: no cover
    from repro.graph.temporal_csr import WindowView
    from repro.pagerank.config import PagerankConfig
    from repro.pagerank.workspace import Workspace

__all__ = [
    "CompactedPull",
    "CompactedUnion",
    "compact_pull",
    "compact_pull_weighted",
    "compact_pull_union",
    "compact_push",
    "resolve_edge_path",
]


@dataclass(frozen=True)
class CompactedPull:
    """One window's active in-edges packed into a dense CSR pair.

    Attributes
    ----------
    indptr:
        ``(n_rows + 1,)`` int64 — per-destination ranges into ``col``.
    col:
        ``(n_edges,)`` int64 — source vertex per packed edge, preserving
        the stored within-row order (the bitwise-identity requirement).
    rows:
        ``(n_edges,)`` int64 — destination vertex per packed edge (the
        expansion of ``indptr``), consumed by the kernels' sequential
        :func:`~repro.utils.segments.segment_sum_ordered` reduction.
    weights:
        Optional ``(n_edges,)`` float64 — per-edge multiplicities for the
        weighted kernel; ``None`` for the unweighted kernels.

    When built against a :class:`~repro.pagerank.workspace.Workspace` the
    arrays are slices of pooled scratch: valid for the current window's
    solve, recycled by the chain's next compaction.
    """

    indptr: np.ndarray
    col: np.ndarray
    rows: np.ndarray
    weights: Optional[np.ndarray] = None

    @property
    def n_edges(self) -> int:
        return self.col.size


@dataclass(frozen=True)
class CompactedUnion:
    """The union of k windows' active in-edges, for the SpMM kernel.

    ``active[:, j]`` marks which packed edges belong to window j; an edge
    is packed iff it is active in *any* of the k windows, so the
    per-iteration structure pass shrinks from nnz to the union size while
    each column still masks exactly its own edges.
    """

    indptr: np.ndarray
    col: np.ndarray
    rows: np.ndarray
    active: np.ndarray  # (n_edges, k) bool

    @property
    def n_edges(self) -> int:
        return self.col.size


def _packed_indptr(
    counts: np.ndarray, workspace: Optional["Workspace"], key: str
) -> np.ndarray:
    if workspace is None:
        return lengths_to_indptr(counts)
    indptr = workspace.buffer(key, (counts.size + 1,), np.int64)
    indptr[0] = 0
    np.cumsum(counts, out=indptr[1:])
    return indptr


def compact_pull(
    view: "WindowView", workspace: Optional["Workspace"] = None
) -> CompactedPull:
    """Pack ``view``'s active deduped in-edges into ``(indptr_c, col_c,
    rows_c)``.

    One Θ(nnz) pass (a prefix sum over the already-computed per-row active
    degrees plus two boolean compresses); every subsequent power iteration
    then costs Θ(|E_w|) instead of Θ(nnz).
    """
    in_csr = view.adjacency.in_csr
    dedup = view.in_dedup
    indptr_c = _packed_indptr(view.in_degrees, workspace, "compact.indptr")
    m = view.n_active_edges
    if workspace is None:
        col_c = in_csr.col[dedup]
        rows_c = in_csr.row_ids()[dedup]
    else:
        # nnz-capacity buffers sliced to m: the capacity is constant per
        # multi-window graph, so the chain reallocates at most once
        col_c = workspace.buffer("compact.col", (in_csr.nnz,), np.int64)[:m]
        np.compress(dedup, in_csr.col, out=col_c)
        rows_c = workspace.buffer(
            "compact.rows", (in_csr.nnz,), np.int64
        )[:m]
        np.compress(dedup, in_csr.row_ids(), out=rows_c)
    return CompactedPull(indptr=indptr_c, col=col_c, rows=rows_c)


def compact_pull_weighted(
    view: "WindowView",
    dedup: np.ndarray,
    weights: np.ndarray,
    workspace: Optional["Workspace"] = None,
) -> CompactedPull:
    """Like :func:`compact_pull`, additionally packing the per-edge
    multiplicities the weighted kernel derived for this window."""
    in_csr = view.adjacency.in_csr
    indptr_c = _packed_indptr(view.in_degrees, workspace, "compact.indptr")
    m = view.n_active_edges
    if workspace is None:
        col_c = in_csr.col[dedup]
        rows_c = in_csr.row_ids()[dedup]
        weights_c = weights[dedup]
    else:
        nnz = in_csr.nnz
        col_c = workspace.buffer("compact.col", (nnz,), np.int64)[:m]
        np.compress(dedup, in_csr.col, out=col_c)
        rows_c = workspace.buffer("compact.rows", (nnz,), np.int64)[:m]
        np.compress(dedup, in_csr.row_ids(), out=rows_c)
        weights_c = workspace.buffer(
            "compact.weights", (nnz,), np.float64
        )[:m]
        np.compress(dedup, weights, out=weights_c)
    return CompactedPull(
        indptr=indptr_c, col=col_c, rows=rows_c, weights=weights_c
    )


def compact_pull_union(
    views: Sequence["WindowView"],
    workspace: Optional["Workspace"] = None,
) -> CompactedUnion:
    """Pack the union of k same-graph windows' active in-edges.

    The SpMM kernel's batched iteration gathers and reduces over the
    packed union once per iteration; ``active`` re-expresses each window's
    dedup mask in union positions so per-column masking is preserved
    (and with it, bitwise identity to the masked batch).
    """
    adjacency = views[0].adjacency
    in_csr = adjacency.in_csr
    nnz = in_csr.nnz
    k = len(views)
    if workspace is None:
        union = np.zeros(nnz, dtype=np.bool_)
    else:
        union = workspace.zeros("compact.union", (nnz,), np.bool_)
    for v in views:
        union |= v.in_dedup

    cast = (
        workspace.buffer("tcsr.cast", (nnz,), np.int64)
        if workspace is not None
        else None
    )
    counts = segment_count(union, in_csr.indptr, cast_buffer=cast)
    indptr_u = _packed_indptr(counts, workspace, "compact.indptr")
    m = int(indptr_u[-1])

    if workspace is None:
        col_u = in_csr.col[union]
        rows_u = in_csr.row_ids()[union]
        active = np.empty((m, k), dtype=np.bool_)
    else:
        col_u = workspace.buffer("compact.col", (nnz,), np.int64)[:m]
        np.compress(union, in_csr.col, out=col_u)
        rows_u = workspace.buffer("compact.rows", (nnz,), np.int64)[:m]
        np.compress(union, in_csr.row_ids(), out=rows_u)
        active = workspace.buffer("compact.active", (nnz, k), np.bool_)[:m]
    positions = np.flatnonzero(union)
    for j, v in enumerate(views):
        active[:, j] = v.in_dedup[positions]
    return CompactedUnion(
        indptr=indptr_u, col=col_u, rows=rows_u, active=active
    )


def compact_push(
    view: "WindowView", workspace: Optional["Workspace"] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Pack the window's active deduped **out**-edges as ``(src, dst)``.

    The propagation-blocking kernel's edge list — it bins by destination,
    so it wants the push orientation.  Returned arrays are workspace
    slices when a workspace is supplied (the PB kernel immediately
    reorders them into owned, bin-grouped copies).
    """
    out_csr = view.adjacency.out_csr
    ts, te = view.window.t_start, view.window.t_end
    dedup = out_csr.dedup_mask(ts, te, workspace=workspace)
    row_ids = out_csr.row_ids()
    if workspace is None:
        return row_ids[dedup], out_csr.col[dedup]
    m = int(np.count_nonzero(dedup))
    nnz = out_csr.nnz
    src = workspace.buffer("compact.push_src", (nnz,), np.int64)[:m]
    dst = workspace.buffer("compact.push_dst", (nnz,), np.int64)[:m]
    np.compress(dedup, row_ids, out=src)
    np.compress(dedup, out_csr.col, out=dst)
    return src, dst


def resolve_edge_path(
    config: "PagerankConfig",
    nnz: int,
    n_active_edges: int,
    n_vertices: int,
    iteration_hint: Optional[int] = None,
) -> str:
    """Turn ``config.edge_path`` into a concrete ``"masked"``/``"compacted"``.

    ``"auto"`` asks the parallel cost model: compaction pays one Θ(nnz)
    pack to save ``(nnz - |E_w|)`` traversed events per iteration, so the
    decision needs an iteration estimate — ``iteration_hint`` (typically
    the previous window of the chain, whose spectrum is nearly identical)
    when available, otherwise a conservative default capped by the
    config's iteration budget.

    A non-positive hint — a previous window that converged in zero
    iterations (empty window) or a driver that deliberately passes its
    raw counter — also falls back to the default, but *audibly*: a single
    debug-level note per process, because a chain that silently treats
    "converged instantly" as "no information" is hard to diagnose when
    the crossover lands on the wrong side.
    """
    path = config.edge_path
    if path != "auto":
        return path
    # lazy import: repro.parallel pulls in the executor stack; the kernels
    # must stay importable without it at module-import time
    from repro.parallel.cost_model import (
        DEFAULT_EXPECTED_ITERATIONS,
        choose_edge_path,
    )

    if iteration_hint is not None and iteration_hint > 0:
        expected = min(iteration_hint, config.max_iterations)
    else:
        if iteration_hint is not None:
            global _NONPOSITIVE_HINT_NOTED
            if not _NONPOSITIVE_HINT_NOTED:
                _NONPOSITIVE_HINT_NOTED = True
                logging.getLogger(__name__).debug(
                    "edge_path='auto' received iteration_hint=%d; falling "
                    "back to DEFAULT_EXPECTED_ITERATIONS=%d (noted once "
                    "per process)",
                    iteration_hint, DEFAULT_EXPECTED_ITERATIONS,
                )
        expected = min(config.max_iterations, DEFAULT_EXPECTED_ITERATIONS)
    return choose_edge_path(nnz, n_active_edges, n_vertices, expected)


def validate_edge_path(path: str) -> str:
    """Shared validation for config/CLI surfaces."""
    if path not in ("auto", "masked", "compacted"):
        raise ValidationError(
            f"edge_path must be 'auto', 'masked' or 'compacted', "
            f"got {path!r}"
        )
    return path
