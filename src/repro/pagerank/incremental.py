"""Warm-startable PageRank power iteration (Riedy, IPDPSW 2016).

After a batch of updates the graph is "still quite the same as it was", so
instead of restarting from the uniform vector the incremental algorithm
(paper eq. 3) solves for the *correction* induced by the changed edges,
starting from the previous solution.  We implement the standard practical
form: warm-start the power iteration from the previous vector — restricted
and renormalized to the new active vertex set — and iterate the exact
PageRank operator of the new graph until the residual

    r = (1 - alpha) v - (I - alpha' A^T D^-1) x

drops below tolerance.  This converges to the same fixed point as a
from-scratch solve (the paper made the streaming and postmortem code bases
"produce the same results") while doing fewer iterations when the change is
small — the streaming model's one computational advantage.

This solver lives under :mod:`repro.pagerank` because it is a general
simple-graph solver, not streaming machinery: the offline model uses it
cold-started (``prev_values=None`` degrades to the plain power iteration)
and the streaming model warm-starts it between windows.  ``streaming``
therefore depends on ``pagerank`` — never the reverse.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConvergenceError
from repro.graph.csr import CSRGraph
from repro.pagerank.config import PagerankConfig
from repro.pagerank.result import PagerankResult, WorkStats
from repro.utils.segments import segment_sum

__all__ = ["incremental_pagerank", "csr_pull_arrays"]


def csr_pull_arrays(graph: CSRGraph):
    """Transpose a CSR out-graph into pull arrays (in-indptr, src-col).

    The streaming model pays this per window: its structure is organized
    for updates (out-adjacency blocks), not for the pull iteration.
    """
    tr = graph.transpose()
    return tr.indptr, tr.col


def incremental_pagerank(
    graph: CSRGraph,
    config: PagerankConfig = PagerankConfig(),
    active: Optional[np.ndarray] = None,
    prev_values: Optional[np.ndarray] = None,
    prev_active: Optional[np.ndarray] = None,
) -> PagerankResult:
    """PageRank on ``graph`` warm-started from a previous window's solution.

    Parameters
    ----------
    graph:
        The current simple graph (snapshot of the streaming structure).
    active:
        Active-vertex mask; defaults to vertices with incident edges.
    prev_values, prev_active:
        The previous window's solution and active mask; omitted on the
        first window (cold start from uniform).
    """
    n = graph.n_vertices
    if active is None:
        mask = np.zeros(n, dtype=bool)
        src, dst = graph.edges()
        mask[src] = True
        mask[dst] = True
    else:
        mask = np.asarray(active, dtype=bool)
    n_active = int(mask.sum())
    if n_active == 0:
        return PagerankResult(
            values=np.zeros(n, dtype=np.float64),
            iterations=0,
            converged=True,
            residual=0.0,
        )

    out_deg = graph.out_degrees()
    inv_out = np.zeros(n, dtype=np.float64)
    nz = out_deg > 0
    inv_out[nz] = 1.0 / out_deg[nz]
    in_indptr, in_col = csr_pull_arrays(graph)
    dangling = mask & ~nz

    # warm start: previous values on shared vertices, uniform on new ones,
    # renormalized — the streaming analogue of the paper's eq. 4.
    if prev_values is not None:
        prev_values = np.asarray(prev_values, dtype=np.float64)
        shared = mask & (
            np.asarray(prev_active, dtype=bool)
            if prev_active is not None
            else prev_values > 0
        )
        n_shared = int(shared.sum())
        shared_mass = float(prev_values[shared].sum())
        x = np.zeros(n, dtype=np.float64)
        if n_shared and shared_mass > 0:
            x[shared] = prev_values[shared] * (
                (n_shared / n_active) / shared_mass
            )
            x[mask & ~shared] = 1.0 / n_active
        else:
            x[mask] = 1.0 / n_active
    else:
        x = np.where(mask, 1.0 / n_active, 0.0)

    alpha = config.alpha
    damping = config.damping
    teleport = alpha / n_active
    work = WorkStats()
    residual = np.inf

    for it in range(1, config.max_iterations + 1):
        w = x * inv_out
        y = segment_sum(w[in_col], in_indptr)
        y *= damping
        if config.dangling == "uniform":
            dangling_mass = float(x[dangling].sum())
            if dangling_mass:
                y[mask] += damping * dangling_mass / n_active
        y[mask] += teleport
        y[~mask] = 0.0

        residual = float(np.abs(y - x).sum())
        x = y
        work.iterations += 1
        work.edge_traversals += graph.n_edges
        work.active_edge_traversals += graph.n_edges
        work.vertex_ops += n_active
        if residual < config.tolerance:
            return PagerankResult(x, it, True, residual, work)

    if config.strict:
        raise ConvergenceError(
            f"incremental pagerank did not converge in "
            f"{config.max_iterations} iterations (residual {residual:.3e})"
        )
    return PagerankResult(x, config.max_iterations, False, residual, work)
