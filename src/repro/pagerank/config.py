"""PageRank solver configuration.

The paper uses the classic formulation (its eq. 1)

    PR(v) = alpha / |V| + (1 - alpha) * sum_{u in Γ-(v)} PR(u) / |Γ+(u)|

where ``alpha`` is the **teleportation probability** (so the damping factor
of the Brin–Page formulation is ``1 - alpha``).  Mass sent to dangling
vertices (``|Γ+(u)| = 0``) is dropped in the literal equation; setting
``dangling="uniform"`` redistributes it uniformly over the active vertex
set instead, which makes the vector sum to exactly 1 and is what most
production implementations do.  ``"uniform"`` is the default: the paper's
partial initialization (eq. 4) renormalizes the warm-start vector to unit
mass, which only matches the fixed point's scale when dangling mass is
redistributed — under ``"drop"`` the scale mismatch erases the warm-start
benefit entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["PagerankConfig"]

_DANGLING_MODES = ("drop", "uniform")
_EDGE_PATHS = ("auto", "masked", "compacted")
_BACKENDS = ("auto", "numpy", "pcpm", "numba")


@dataclass(frozen=True)
class PagerankConfig:
    """Parameters shared by every PageRank kernel in the library.

    Attributes
    ----------
    alpha:
        Teleportation probability in (0, 1).  The paper's eq. 1; 0.15
        corresponds to the classic 0.85 damping factor.
    tolerance:
        L1 convergence threshold on successive iterates.
    max_iterations:
        Hard iteration cap (the paper notes implementations "execute a
        fixed number of iterations at most").
    dangling:
        ``"uniform"`` (redistribute dangling mass uniformly over active
        vertices; the default — see module docstring) or ``"drop"``
        (paper eq. 1 literal).
    strict:
        When True, kernels raise :class:`~repro.errors.ConvergenceError`
        instead of returning a non-converged result.
    edge_path:
        How kernels traverse the window's edges each iteration:
        ``"masked"`` streams all stored nnz events and zeroes the inactive
        ones, ``"compacted"`` packs the active deduped edges once per
        window (:mod:`repro.pagerank.compaction`) and iterates over only
        those, and ``"auto"`` (default) picks per window from the
        activity ratio and expected iteration count via
        :func:`repro.parallel.cost_model.choose_edge_path`.  All three
        produce bitwise-identical values.
    backend:
        Execution strategy for the per-iteration gather→reduce step
        (:mod:`repro.pagerank.backends`): ``"numpy"`` (flat full-width
        pass), ``"pcpm"`` (destination-partitioned reduce under the
        cache budget, after Lakhotia et al.), ``"numba"`` (PCPM with a
        JIT-fused reduce; degrades to pcpm when numba is absent), or
        ``"auto"`` (default: ask
        :func:`repro.parallel.cost_model.choose_backend`, composing with
        the resolved ``edge_path``).  All backends produce
        bitwise-identical values.
    cache_budget:
        Per-partition rank-slice budget in bytes for the partitioned
        backends (``cache_budget // 8`` vertices per partition); also the
        threshold below which ``backend="auto"`` never partitions.
    """

    alpha: float = 0.15
    tolerance: float = 1e-8
    max_iterations: int = 100
    dangling: str = "uniform"
    strict: bool = False
    edge_path: str = "auto"
    backend: str = "auto"
    cache_budget: int = 262_144

    def __post_init__(self) -> None:
        if not (0.0 < self.alpha < 1.0):
            raise ValidationError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.tolerance <= 0:
            raise ValidationError(
                f"tolerance must be > 0, got {self.tolerance}"
            )
        if self.max_iterations <= 0:
            raise ValidationError(
                f"max_iterations must be > 0, got {self.max_iterations}"
            )
        if self.dangling not in _DANGLING_MODES:
            raise ValidationError(
                f"dangling must be one of {_DANGLING_MODES}, "
                f"got {self.dangling!r}"
            )
        if self.edge_path not in _EDGE_PATHS:
            raise ValidationError(
                f"edge_path must be one of {_EDGE_PATHS}, "
                f"got {self.edge_path!r}"
            )
        if self.backend not in _BACKENDS:
            raise ValidationError(
                f"backend must be one of {_BACKENDS}, "
                f"got {self.backend!r}"
            )
        if self.cache_budget <= 0:
            raise ValidationError(
                f"cache_budget must be > 0 bytes, got {self.cache_budget}"
            )

    @property
    def damping(self) -> float:
        """The Brin–Page damping factor ``1 - alpha``."""
        return 1.0 - self.alpha
