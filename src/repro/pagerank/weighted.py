"""Event-frequency-weighted PageRank.

The paper's model collapses event multiplicity: an edge either exists in a
window or it does not.  But the multiplicity is information — five emails
in the window arguably carry more endorsement than one.  This extension
weights each window edge by its **event count within the window** and runs
weighted PageRank:

    PR(v) = α/|V_i| + (1−α) Σ_{(u,v)} PR(u) · w_i(u,v) / W_i(u)

where ``w_i(u,v)`` is the number of (u, v) events inside window i and
``W_i(u)`` the sum of u's outgoing window weights.

The temporal CSR makes the weights nearly free: within a (row, neighbor)
group the active events are contiguous, so the per-group count is a
segment-count over *group runs* — the same O(nnz) vectorized machinery as
the dedup mask.  No extra arrays are stored; weights are derived per
window from the timestamps.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConvergenceError, ValidationError
from repro.graph.temporal_csr import TemporalCSR, WindowView
from repro.pagerank.backends import resolve_backend
from repro.pagerank.compaction import compact_pull_weighted, resolve_edge_path
from repro.pagerank.config import PagerankConfig
from repro.pagerank.init import full_initialization
from repro.pagerank.result import PagerankResult, WorkStats

__all__ = ["window_edge_weights", "pagerank_window_weighted"]


def window_edge_weights(
    csr: TemporalCSR, t_start: int, t_end: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-edge multiplicities for one window.

    Returns ``(dedup_mask, weights)`` where ``weights[j]`` (only meaningful
    at dedup positions) is the number of the group's events inside the
    window.  Vectorized: group ids from a cumulative sum of group starts,
    active counts per group via ``bincount``.
    """
    active = csr.active_mask(t_start, t_end)
    dedup = csr.dedup_mask(t_start, t_end, active)
    if csr.nnz == 0:
        return dedup, np.zeros(0, dtype=np.float64)
    group_ids = np.cumsum(csr.group_start) - 1
    counts = np.bincount(
        group_ids[active], minlength=int(group_ids[-1]) + 1
    )
    weights = np.zeros(csr.nnz, dtype=np.float64)
    weights[dedup] = counts[group_ids[dedup]]
    return dedup, weights


def pagerank_window_weighted(
    view: WindowView,
    config: PagerankConfig = PagerankConfig(),
    x0: Optional[np.ndarray] = None,
    workspace=None,
    iteration_hint: Optional[int] = None,
) -> PagerankResult:
    """Multiplicity-weighted PageRank for one window.

    Same convergence/dangling semantics as the unweighted kernel; with all
    multiplicities equal to 1 the two kernels coincide exactly (tested).
    ``workspace`` recycles the per-iteration share/contribution/rank
    scratch; returned values are always freshly owned.  ``config.
    edge_path="compacted"`` packs the active edges *and* their
    multiplicities once (:func:`~repro.pagerank.compaction.
    compact_pull_weighted`) so each iteration streams Θ(|E_w|) —
    bitwise-identical to the masked path.
    """
    adjacency = view.adjacency
    n = adjacency.n_vertices
    n_active = view.n_active_vertices
    if n_active == 0:
        return PagerankResult(
            values=np.zeros(n, dtype=np.float64), iterations=0, converged=True, residual=0.0
        )

    ts, te = view.window.t_start, view.window.t_end
    in_csr = adjacency.in_csr
    dedup, weights = window_edge_weights(in_csr, ts, te)
    col = in_csr.col
    nnz = in_csr.nnz

    # weighted out-strength per source: sum of its outgoing edge weights
    out_strength = np.zeros(n, dtype=np.float64)
    np.add.at(out_strength, col[dedup], weights[dedup])
    inv_strength = np.zeros(n, dtype=np.float64)
    nz = out_strength > 0
    inv_strength[nz] = 1.0 / out_strength[nz]

    active_mask = view.active_vertices_mask
    dangling_idx = np.flatnonzero(active_mask & ~nz)

    path = resolve_edge_path(
        config, nnz, view.n_active_edges, n, iteration_hint
    )
    if path == "compacted":
        packed = compact_pull_weighted(
            view, dedup, weights, workspace=workspace
        )
        it_col, it_rows = packed.col, packed.rows
        it_weights = packed.weights
        it_nnz = packed.n_edges
    else:
        it_col, it_rows, it_weights = col, in_csr.row_ids(), weights
        it_nnz = nnz
    it_mask = dedup if path != "compacted" else None

    work = WorkStats()
    backend = resolve_backend(config, it_nnz, n, iteration_hint)
    t_bin = time.perf_counter()
    plan = backend.make_plan(
        it_col, it_rows, n,
        workspace=workspace, key="wspmv.plan", capacity=nnz,
    )
    work.binning_seconds += time.perf_counter() - t_bin

    ws = workspace
    if ws is not None:
        rank0 = ws.buffer("wspmv.rank0", (n,), np.float64)
        rank1 = ws.buffer("wspmv.rank1", (n,), np.float64)
        w_buf = ws.buffer("wspmv.w", (n,), np.float64)
        contrib_buf = ws.buffer("wspmv.contrib", (nnz,), np.float64)[:it_nnz]
        resid = ws.buffer("wspmv.resid", (n,), np.float64)
        dang_buf = ws.buffer(
            "wspmv.dangling", (dangling_idx.size,), np.float64
        )

    if x0 is None:
        x = full_initialization(view)
    else:
        x = np.asarray(x0, dtype=np.float64)
        if x.shape != (n,):
            raise ValidationError(f"x0 must have shape ({n},)")
        x = x.copy() if ws is None else x
    if ws is not None:
        np.copyto(rank0, x)
        x = rank0

    alpha = config.alpha
    damping = config.damping
    teleport = alpha / n_active
    residual = np.inf

    for it in range(1, config.max_iterations + 1):
        t_prop = time.perf_counter()
        if ws is None:
            w = x * inv_strength
            y = plan.propagate(w, mask=it_mask, weights=it_weights)
        else:
            np.multiply(x, inv_strength, out=w_buf)
            y = rank1 if x is rank0 else rank0
            plan.propagate(
                w_buf, mask=it_mask, weights=it_weights,
                out=y, contrib=contrib_buf,
            )
        work.propagate_seconds += time.perf_counter() - t_prop
        y *= damping
        if config.dangling == "uniform" and dangling_idx.size:
            if ws is None:
                dangling_mass = float(x[dangling_idx].sum())
            else:
                np.take(x, dangling_idx, out=dang_buf)
                dangling_mass = float(dang_buf.sum())
            if dangling_mass:
                y[active_mask] += damping * dangling_mass / n_active
        y[active_mask] += teleport
        y[~active_mask] = 0.0

        if ws is None:
            residual = float(np.abs(y - x).sum())
        else:
            np.subtract(y, x, out=resid)
            np.abs(resid, out=resid)
            residual = float(resid.sum())
        x = y
        work.iterations += 1
        work.edge_traversals += it_nnz
        work.active_edge_traversals += view.n_active_edges
        work.vertex_ops += n_active
        if residual < config.tolerance:
            return PagerankResult(
                x if ws is None else x.copy(), it, True, residual, work
            )

    if config.strict:
        raise ConvergenceError(
            f"weighted kernel did not converge in {config.max_iterations} "
            f"iterations"
        )
    return PagerankResult(
        x if ws is None else x.copy(),
        config.max_iterations, False, residual, work,
    )
