"""Result containers for PageRank runs.

Besides the solution vector, every kernel reports *work statistics* — the
quantities (edge traversals, vertex operations, iterations) the parallel
cost model is calibrated against.  This is how the simulated machine charges
exactly the work the real kernel performed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

__all__ = ["WorkStats", "PagerankResult", "BatchPagerankResult"]


@dataclass
class WorkStats:
    """Machine-independent work counters for one solver run.

    Attributes
    ----------
    iterations:
        Power iterations executed.
    edge_traversals:
        Total stored events touched (iterations × structure nnz for the
        masked kernels; note this is the *structure* size, which is why
        multi-window partitioning matters).
    active_edge_traversals:
        Iterations × active (deduplicated) edges — the useful work.
    vertex_ops:
        Iterations × vertices updated.
    binning_seconds:
        Wall-clock spent in the backend's one-time edge-plan setup (the
        PCPM destination-partition binning; ~0 for the flat numpy plan).
        Unlike the counters above this is machine-*dependent* — it exists
        so benchmarks and the traffic harness can attribute backend wins
        without re-profiling.
    propagate_seconds:
        Wall-clock spent inside the backend's per-iteration
        gather→reduce propagation calls.
    """

    iterations: int = 0
    edge_traversals: int = 0
    active_edge_traversals: int = 0
    vertex_ops: int = 0
    binning_seconds: float = 0.0
    propagate_seconds: float = 0.0

    def merge(self, other: "WorkStats") -> None:
        self.iterations += other.iterations
        self.edge_traversals += other.edge_traversals
        self.active_edge_traversals += other.active_edge_traversals
        self.vertex_ops += other.vertex_ops
        self.binning_seconds += other.binning_seconds
        self.propagate_seconds += other.propagate_seconds

    @classmethod
    def accumulate(cls, stats_list) -> "WorkStats":
        total = cls()
        for s in stats_list:
            total.merge(s)
        return total


@dataclass
class PagerankResult:
    """Solution of one window's PageRank.

    ``values`` lives in whatever vertex space the kernel ran in (local
    multi-window space for postmortem runs; drivers scatter to the global
    space when requested).
    """

    values: np.ndarray
    iterations: int
    converged: bool
    residual: float
    work: WorkStats = field(default_factory=WorkStats)

    @property
    def total_mass(self) -> float:
        return float(self.values.sum())


@dataclass
class BatchPagerankResult:
    """Solution of an SpMM batch: k windows solved simultaneously.

    ``values`` is ``(n_vertices, k)``; column j corresponds to
    ``window_indices[j]``.
    """

    values: np.ndarray
    window_indices: List[int]
    iterations_per_window: np.ndarray
    converged: np.ndarray
    residuals: np.ndarray
    work: WorkStats = field(default_factory=WorkStats)

    def column(self, window_index: int) -> PagerankResult:
        """Extract one window's result from the batch."""
        j = self.window_indices.index(window_index)
        return PagerankResult(
            values=self.values[:, j].copy(),
            iterations=int(self.iterations_per_window[j]),
            converged=bool(self.converged[j]),
            residual=float(self.residuals[j]),
        )
