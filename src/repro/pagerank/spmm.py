"""The SpMM-inspired postmortem PageRank kernel (paper Section 4.4).

When several windows live in the *same* multi-window graph, their PageRank
iterations share the structure arrays (``rowA``/``colA``/``timeA``).  The
SpMM kernel keeps the k in-flight PageRank vectors as an ``(n, k)`` matrix
and performs one iteration for all k windows in a single pass over the
structure:

    W[n, k]       = X * inv_outdeg[:, window]         # per-source shares
    C[nnz, k]     = W[colA, :] * active[nnz, k]       # one gather for all k
    Y[n, k]       = segment_sum_ordered(C, rowA)      # one reduction pass

The structure is read once per iteration instead of k times, and the
gathered rows of ``W`` are contiguous — the access-pattern regularization
the paper borrows from classic SpMM.  Windows may converge at different
iterations; converged columns are frozen (their values stop changing) while
the remaining columns keep iterating, and per-column iteration counts are
reported.

With ``config.edge_path="compacted"`` the kernel packs the **union** of
the k windows' active deduped edges once per batch
(:func:`~repro.pagerank.compaction.compact_pull_union`): the strided
region schedule batches windows that are far apart in time, so the union
is typically a small fraction of nnz and the shared structure pass
shrinks accordingly.  Bitwise-identical to the masked batch.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConvergenceError, ValidationError
from repro.graph.temporal_csr import WindowView
from repro.pagerank.backends import resolve_backend
from repro.pagerank.compaction import compact_pull_union, resolve_edge_path
from repro.pagerank.config import PagerankConfig
from repro.pagerank.init import full_initialization
from repro.pagerank.result import BatchPagerankResult, WorkStats

__all__ = ["pagerank_windows_spmm"]


def pagerank_windows_spmm(
    views: Sequence[WindowView],
    config: PagerankConfig = PagerankConfig(),
    x0: Optional[np.ndarray] = None,
    workspace=None,
    iteration_hint: Optional[int] = None,
) -> BatchPagerankResult:
    """Solve k windows of one multi-window graph simultaneously.

    Parameters
    ----------
    views:
        Window views that must all share the same
        :class:`~repro.graph.temporal_csr.TemporalAdjacency`.
    x0:
        Optional ``(n, k)`` initial matrix (column j initializes
        ``views[j]``); columns default to full initialization.
    workspace:
        Optional :class:`~repro.pagerank.workspace.Workspace`.  The stacked
        structure matrices (the ``(nnz, k)`` dedup mask — the batch's
        dominant allocation — plus degrees/activity) and the per-iteration
        gather/reduce buffers are recycled across same-width batches of a
        chain.  Once columns start converging the live subset shrinks and
        the kernel falls back to the allocating slow path for those
        iterations; results are bitwise-identical either way, and returned
        values are always freshly owned.

    Returns
    -------
    BatchPagerankResult
        ``values[:, j]`` is the PageRank of ``views[j].window``.
    """
    if not views:
        raise ValidationError("need at least one window view")
    adjacency = views[0].adjacency
    for v in views[1:]:
        if v.adjacency is not adjacency:
            raise ValidationError(
                "SpMM kernel requires all windows from the same "
                "multi-window graph"
            )

    n = adjacency.n_vertices
    k = len(views)
    in_csr = adjacency.in_csr
    nnz = in_csr.nnz
    ws = workspace
    active_edge_counts = np.array(
        [v.n_active_edges for v in views], dtype=np.int64
    )

    # the union can't exceed the sum of the windows' active edges (nor
    # nnz), so that bound stands in for its size in the auto decision —
    # computing the real union only to discard it would cost the very
    # Θ(nnz·k) pass the masked path avoids paying twice
    est_union = min(nnz, int(active_edge_counts.sum()))
    path = resolve_edge_path(config, nnz, est_union, n, iteration_hint)

    # per-window structure data: per-edge masks and (n, k) degrees
    if path == "compacted":
        packed = compact_pull_union(views, workspace=ws)
        it_col, it_rows = packed.col, packed.rows
        dedup = packed.active
        it_nnz = packed.n_edges
    elif ws is None:
        dedup = np.stack([v.in_dedup for v in views], axis=1)
        it_col, it_rows, it_nnz = in_csr.col, in_csr.row_ids(), nnz
    else:
        dedup = np.stack(
            [v.in_dedup for v in views], axis=1,
            out=ws.buffer("spmm.dedup", (nnz, k), np.bool_),
        )
        it_col, it_rows, it_nnz = in_csr.col, in_csr.row_ids(), nnz

    work = WorkStats()
    backend = resolve_backend(config, it_nnz, n, iteration_hint)
    t_bin = time.perf_counter()
    plan = backend.make_plan(
        it_col, it_rows, n, workspace=ws, key="spmm.plan", capacity=nnz,
    )
    work.binning_seconds += time.perf_counter() - t_bin

    if ws is None:
        inv_out = np.empty((n, k), dtype=np.float64)
        active = np.stack([v.active_vertices_mask for v in views], axis=1)
        dangling = active & np.stack(
            [v.out_degrees == 0 for v in views], axis=1
        )
    else:
        inv_out = ws.buffer("spmm.inv_out", (n, k), np.float64)
        active = np.stack(
            [v.active_vertices_mask for v in views], axis=1,
            out=ws.buffer("spmm.active", (n, k), np.bool_),
        )
        dangling = np.stack(
            [v.out_degrees == 0 for v in views], axis=1,
            out=ws.buffer("spmm.dangling", (n, k), np.bool_),
        )
        dangling &= active
    # column-at-a-time fill: a workspace-built view's inverse_out_degrees
    # returns shared pooled scratch, so each result must be copied out
    # before the next view's call overwrites it
    for j, v in enumerate(views):
        inv_out[:, j] = v.inverse_out_degrees()
    n_active = np.array([v.n_active_vertices for v in views], dtype=np.int64)

    if x0 is None:
        if ws is None:
            X = np.stack([full_initialization(v) for v in views], axis=1)
        else:
            X = np.stack(
                [full_initialization(v) for v in views], axis=1,
                out=ws.buffer("spmm.X", (n, k), np.float64),
            )
    else:
        x0 = np.asarray(x0, dtype=np.float64)
        if x0.shape != (n, k):
            raise ValidationError(f"x0 must have shape ({n}, {k})")
        if ws is None:
            X = x0.copy()
        else:
            X = ws.buffer("spmm.X", (n, k), np.float64)
            np.copyto(X, x0)

    alpha = config.alpha
    damping = config.damping
    safe_active = np.maximum(n_active, 1)
    teleport = np.where(n_active > 0, alpha / safe_active, 0.0)

    iterations = np.zeros(k, dtype=np.int64)
    residuals = np.full(k, np.inf, dtype=np.float64)
    converged = n_active == 0  # empty windows are trivially done
    residuals[converged] = 0.0
    X[:, converged] = 0.0

    live = ~converged
    it = 0
    while live.any() and it < config.max_iterations:
        it += 1
        idx = np.flatnonzero(live)
        t_prop = time.perf_counter()
        if ws is not None and idx.size == k:
            # full-width fast path: every window still live, so the
            # workspace buffers apply directly with no column selection
            Xl = X
            W = np.multiply(
                X, inv_out, out=ws.buffer("spmm.W", (n, k), np.float64)
            )
            Y = plan.propagate_batch(
                W, dedup,
                out=ws.buffer("spmm.Y", (n, k), np.float64),
                contrib=ws.buffer("spmm.C", (nnz, k), np.float64)[:it_nnz],
                scratch=ws.buffer("spmm.colbuf", (nnz,), np.float64)[:it_nnz],
            )
            act = active
            dang = dangling
        else:
            Xl = X[:, idx]
            W = Xl * inv_out[:, idx]
            # one structure pass for every live window (over the packed
            # union when compacted — column selection composes with it)
            Y = plan.propagate_batch(W, dedup[:, idx])
            act = active[:, idx]
            dang = dangling[:, idx]
        work.propagate_seconds += time.perf_counter() - t_prop
        Y *= damping
        if config.dangling == "uniform":
            dmass = np.sum(Xl * dang, axis=0)
            Y += (damping * dmass / safe_active[idx]) * act
        Y += teleport[idx] * act
        Y[~act] = 0.0

        res = np.abs(Y - Xl).sum(axis=0)
        X[:, idx] = Y
        iterations[idx] += 1
        residuals[idx] = res

        work.iterations += 1
        work.edge_traversals += it_nnz  # one shared structure pass
        work.active_edge_traversals += int(active_edge_counts[idx].sum())
        work.vertex_ops += int(n_active[idx].sum())

        newly = res < config.tolerance
        converged[idx[newly]] = True
        live = ~converged

    if config.strict and not converged.all():
        bad = [views[j].window.index for j in np.flatnonzero(~converged)]
        raise ConvergenceError(
            f"windows {bad} did not converge in {config.max_iterations} "
            f"iterations"
        )

    return BatchPagerankResult(
        values=X if ws is None else X.copy(),
        window_indices=[v.window.index for v in views],
        iterations_per_window=iterations,
        converged=converged,
        residuals=residuals,
        work=work,
    )
