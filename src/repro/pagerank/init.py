"""PageRank vector initialization (paper Section 4.2).

* **Full initialization** — the classic uniform 1/|V_i| over the window's
  active vertices.
* **Partial initialization** (eq. 4) — warm-start window *i* from window
  *i-1*'s converged vector:

      PR_i[u] = (|V_i ∩ V_{i-1}| / |V_i|) * PR_{i-1}[u] / Σ_{v ∈ V_i ∩ V_{i-1}} PR_{i-1}[v]

  for vertices present in both windows.  Vertices new in window *i* get the
  uniform 1/|V_i|, so the initial vector sums to exactly 1.  Because two
  consecutive overlapping windows share most vertices and edges, this
  starts the power iteration close to the fixed point and cuts iteration
  counts by the 1.5–3.5× the paper measures (Figure 6).

Both windows must live in the *same* vertex index space (the same
multi-window graph) — the paper explicitly skips partial initialization
across multi-window boundaries because the compacted index spaces differ.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.graph.temporal_csr import WindowView

__all__ = ["full_initialization", "partial_initialization"]


def full_initialization(view: WindowView) -> np.ndarray:
    """Uniform 1/|V_i| over the window's active vertices, 0 elsewhere."""
    n_active = view.n_active_vertices
    x = np.zeros(view.adjacency.n_vertices, dtype=np.float64)
    if n_active:
        x[view.active_vertices_mask] = 1.0 / n_active
    return x


def partial_initialization(
    view: WindowView,
    prev_view: WindowView,
    prev_values: np.ndarray,
) -> np.ndarray:
    """Eq. 4 warm start of ``view`` from the previous window's solution.

    Parameters
    ----------
    view, prev_view:
        Window views over the **same** adjacency (same local vertex space).
    prev_values:
        Converged PageRank of ``prev_view`` in that space.

    Falls back to full initialization when the windows share no vertices or
    the previous mass on the shared set is numerically zero.
    """
    if view.adjacency is not prev_view.adjacency:
        if view.adjacency.n_vertices != prev_view.adjacency.n_vertices:
            raise ValidationError(
                "partial initialization requires both windows in the same "
                "vertex space (same multi-window graph)"
            )
    prev_values = np.asarray(prev_values, dtype=np.float64)
    if prev_values.shape != (view.adjacency.n_vertices,):
        raise ValidationError(
            "prev_values must be a per-vertex vector in the shared space"
        )

    cur = view.active_vertices_mask
    prev = prev_view.active_vertices_mask
    shared = cur & prev
    n_cur = view.n_active_vertices
    n_shared = int(shared.sum())
    if n_cur == 0:
        return np.zeros(view.adjacency.n_vertices, dtype=np.float64)

    shared_mass = float(prev_values[shared].sum())
    if n_shared == 0 or shared_mass <= 0.0:
        return full_initialization(view)

    x = np.zeros(view.adjacency.n_vertices, dtype=np.float64)
    scale = (n_shared / n_cur) / shared_mass
    x[shared] = prev_values[shared] * scale
    # vertices newly active in this window get the uniform share
    x[cur & ~prev] = 1.0 / n_cur
    return x
