"""Value-sink multiplexing for the execution runtime.

A *sink* is the runtime's streaming output channel: a callable
``sink(window_index, values, meta)`` invoked with each window's solved
vector (global vertex space) the moment it exists, where ``meta`` is the
window's :class:`~repro.models.base.WindowResult`.  The canonical sink is
:meth:`repro.service.store.RankStoreWriter.write_window`, which persists a
servable rank store while the run holds only one vector in memory; tests
use plain closures.

Sinks compose: a driver's effective sink is the chain of the context-level
sink (configured once, e.g. by the CLI) and the per-run sink passed to
``run(value_sink=...)``.  :func:`chain_sinks` builds that chain, dropping
``None`` links and collapsing a single survivor to itself so the common
one-sink case adds no indirection.

Sinks may be invoked concurrently by the ``"thread"`` executor and from a
parent-side drain thread by the ``"shared"`` executor; a sink that mutates
shared state must lock internally (``RankStoreWriter`` does).
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["Sink", "chain_sinks", "counting_sink"]

#: the sink contract: ``(window_index, values, meta) -> None``
Sink = Callable[[int, object, object], None]


def chain_sinks(*sinks: Optional[Sink]) -> Optional[Sink]:
    """Compose sinks left-to-right, ignoring ``None`` entries.

    Returns ``None`` when every argument is ``None`` (no sink configured),
    the sink itself when exactly one survives, and a fan-out callable
    otherwise.  The fan-out invokes every link even under concurrency —
    each link must be individually thread-safe, exactly as a lone sink
    must be.
    """
    chain = tuple(s for s in sinks if s is not None)
    if not chain:
        return None
    if len(chain) == 1:
        return chain[0]

    def fanout(window_index: int, values, meta) -> None:
        for sink in chain:
            sink(window_index, values, meta)

    return fanout


def counting_sink(counter: dict) -> Sink:
    """A diagnostic sink recording call counts per window index.

    ``counter`` maps window index -> number of sink invocations; useful in
    tests and smoke checks to assert every window was emitted exactly once.
    """

    def sink(window_index: int, values, meta) -> None:
        counter[window_index] = counter.get(window_index, 0) + 1

    return sink
