"""Shared execution runtime for the model drivers.

One layer answers, for every execution model, the questions each driver
used to answer privately:

* **contract** — :class:`~repro.runtime.base.ModelDriver`: uniform
  ``run(store_values=..., value_sink=..., progress=...)``;
* **policy** — :class:`~repro.runtime.context.DriverContext`: executor
  selection, default sinks, progress/trace hooks;
* **execution** — :mod:`repro.runtime.execution`: the executor taxonomy
  and the in-process ordered task map (process/shared execution lives in
  :mod:`repro.parallel`);
* **output** — :mod:`repro.runtime.sinks`: chained streaming value
  sinks feeding rank stores and tests;
* **construction** — :func:`~repro.runtime.registry.make_driver`: model
  name → driver, with an orthogonal ``program`` dimension selecting the
  vertex program (:mod:`repro.programs`) every model runs;
* **discovery** — :mod:`repro.runtime.artifacts`: resolve a path (file
  or run output directory) to the rank store the serving tier should
  open.

See ``docs/architecture.md`` ("The execution runtime") for the layer
diagram.
"""

from repro.runtime.artifacts import (
    RankStoreCandidate,
    discover_rank_store,
    find_rank_stores,
)
from repro.runtime.base import ModelDriver, record_run_metadata
from repro.runtime.context import (
    DriverContext,
    NULL_SCOPE,
    ProgressFn,
    RunScope,
    TraceFn,
)
from repro.runtime.execution import EXECUTORS, map_tasks, require_executor
from repro.runtime.registry import MODELS, make_driver
from repro.runtime.sinks import Sink, chain_sinks, counting_sink
from repro.programs.registry import PROGRAMS, make_program

__all__ = [
    "PROGRAMS",
    "make_program",
    "ModelDriver",
    "record_run_metadata",
    "DriverContext",
    "RunScope",
    "NULL_SCOPE",
    "ProgressFn",
    "TraceFn",
    "EXECUTORS",
    "map_tasks",
    "require_executor",
    "MODELS",
    "make_driver",
    "Sink",
    "chain_sinks",
    "counting_sink",
    "RankStoreCandidate",
    "discover_rank_store",
    "find_rank_stores",
]
