"""The driver context: one bundle of runtime policy for any model driver.

Every execution model answers the same three questions at run time —

* **where** does the work execute (``serial`` / ``thread`` / ``process`` /
  ``shared``, worker count)?
* **where** do solved vectors go (the chained value sinks of
  :mod:`repro.runtime.sinks`, in addition to the in-memory ``RunResult``)?
* **who** is told about progress and phase boundaries (``progress`` and
  ``trace`` hooks)?

:class:`DriverContext` carries the answers so the four drivers share one
contract instead of growing private keyword soup.  Models whose dependence
structure forbids an executor reject it at construction time via
:func:`repro.runtime.execution.require_executor` (streaming is inherently
sequential; offline and postmortem parallelize).

:class:`RunScope` / :data:`NULL_SCOPE` are the timing-and-work
accumulation half: a unit of driver work (a window, a chunk, a
multi-window chain) measures its phases into a scope, and the scope either
feeds a ``RunResult`` (:meth:`RunScope.merge_into`) or discards everything
(:data:`NULL_SCOPE` — the replacement for the old throwaway-``RunResult``
sentinel hack).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional

from repro.pagerank.result import WorkStats
from repro.utils.timer import TimingAccumulator

from repro.runtime.sinks import Sink

__all__ = [
    "DriverContext",
    "ProgressFn",
    "TraceFn",
    "RunScope",
    "NULL_SCOPE",
]

#: progress callback: ``progress(windows_done, windows_total)``.  Parallel
#: executors may invoke it from worker threads (never from worker
#: *processes* — those report through the parent).
ProgressFn = Callable[[int, int], None]

#: tracing hook: ``trace(event, payload)`` with dot-separated event names
#: (``"build.done"``, ``"window.done"``, ``"run.done"``) and a small
#: JSON-able payload dict.
TraceFn = Callable[[str, Dict[str, object]], None]


class RunScope:
    """Accumulates phase timings and work counters for one unit of work.

    A scope is cheap and single-threaded by design: parallel executors
    give each worker its own scope and merge them into the shared
    ``RunResult`` afterwards, so no lock guards the hot path.
    """

    __slots__ = ("timings", "work")

    def __init__(
        self,
        timings: Optional[TimingAccumulator] = None,
        work: Optional[WorkStats] = None,
    ) -> None:
        self.timings = timings if timings is not None else TimingAccumulator()
        self.work = work if work is not None else WorkStats()

    @classmethod
    def into(cls, result) -> "RunScope":
        """A scope that accumulates directly into ``result``'s timers and
        work stats (the serial-execution fast path — no later merge)."""
        return cls(result.timings, result.work)

    def phase(self, name: str):
        """Context manager timing a block under ``name``."""
        return self.timings.phase(name)

    def add_work(self, stats: WorkStats) -> None:
        self.work.merge(stats)

    def merge_into(self, result) -> None:
        """Fold this scope's measurements into a ``RunResult``."""
        result.timings.merge(self.timings)
        result.work.merge(self.work)


class _NullScope:
    """A scope that measures nothing — the null object for callers that
    want a single window solved without bookkeeping."""

    __slots__ = ()

    def phase(self, name: str):
        return nullcontext()

    def add_work(self, stats: WorkStats) -> None:
        return None

    def merge_into(self, result) -> None:
        return None


#: shared no-op scope (stateless, safe to reuse everywhere)
NULL_SCOPE = _NullScope()


@dataclass(frozen=True)
class DriverContext:
    """Runtime policy shared by every model driver.

    Attributes
    ----------
    executor:
        ``"serial"``, ``"thread"``, ``"process"`` or ``"shared"``.  Each
        driver validates the choice against its dependence structure
        (``supported_executors``) at construction.
    n_workers:
        Worker count for the non-serial executors.
    value_sink:
        Context-level sink, chained *before* any sink passed to
        ``run(value_sink=...)`` (see :func:`repro.runtime.sinks.chain_sinks`).
    progress:
        Default progress callback when ``run(progress=...)`` is omitted.
    trace:
        Phase-boundary hook; see :meth:`emit`.
    edge_path:
        Optional runtime override for
        :attr:`repro.pagerank.config.PagerankConfig.edge_path`
        (``"auto"``/``"masked"``/``"compacted"``).  ``None`` defers to the
        config — drivers apply the override by replacing their config's
        field, so kernels never consult the context directly.
    backend:
        Optional runtime override for
        :attr:`repro.pagerank.config.PagerankConfig.backend`
        (``"auto"``/``"numpy"``/``"pcpm"``/``"numba"``), applied the same
        way as ``edge_path``.
    program:
        Optional vertex-program selection (``"pagerank"``/``"katz"``/
        ``"kcore"``; see :mod:`repro.programs`).  ``None`` defers to the
        driver (whose default is the reference PageRank program); a
        driver-level ``program=`` argument wins over the context.
    """

    executor: str = "serial"
    n_workers: int = 4
    value_sink: Optional[Sink] = None
    progress: Optional[ProgressFn] = None
    trace: Optional[TraceFn] = None
    edge_path: Optional[str] = None
    backend: Optional[str] = None
    program: Optional[str] = None

    def __post_init__(self) -> None:
        from repro.errors import ValidationError
        from repro.runtime.execution import EXECUTORS

        if self.executor not in EXECUTORS:
            raise ValidationError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.n_workers <= 0:
            raise ValidationError("n_workers must be > 0")
        if self.edge_path is not None:
            from repro.pagerank.compaction import validate_edge_path

            validate_edge_path(self.edge_path)
        if self.backend is not None:
            from repro.pagerank.backends import validate_backend_name

            validate_backend_name(self.backend)
        if self.program is not None:
            from repro.programs.registry import validate_program_name

            validate_program_name(self.program)

    # ------------------------------------------------------------------
    def with_execution(self, executor: str, n_workers: int) -> "DriverContext":
        """A copy with the execution half replaced (used by drivers whose
        options object owns the executor choice, e.g. postmortem)."""
        return replace(self, executor=executor, n_workers=n_workers)

    def emit(self, event: str, **payload: object) -> None:
        """Invoke the trace hook (no-op when none is configured).

        Trace failures propagate: a hook is part of the run, and hiding
        its errors would violate the project's silent-except rule.
        """
        if self.trace is not None:
            self.trace(event, payload)
