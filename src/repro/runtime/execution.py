"""Executor selection and the generic ordered task map.

The runtime recognises four executors:

``serial``
    Plain loop in the calling thread.  Always supported; the reference
    against which the parallel executors must be bitwise-identical.
``thread``
    ``ThreadPoolExecutor`` (or :class:`repro.parallel.executor.
    ChunkedThreadExecutor` for chunked window fan-out).  NumPy kernels
    release the GIL, so this wins on real workloads with zero pickling.
``process``
    ``ProcessPoolExecutor`` with pickled task payloads.  Highest
    isolation, highest dispatch cost; ``value_sink`` is rejected because
    a closure cannot cross a process boundary.
``shared``
    Process pool over a POSIX shared-memory arena
    (:mod:`repro.parallel.shared_arena`): ~KB pickled handles instead of
    array payloads, and a parent-side drain thread that makes
    ``value_sink`` work under process execution.

Not every model can use every executor — streaming's warm-start chain is
inherently sequential — so each driver declares ``supported_executors``
and gates requests through :func:`require_executor`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, Sequence, Tuple, TypeVar

from repro.errors import ValidationError

__all__ = ["EXECUTORS", "require_executor", "map_tasks"]

#: every executor the runtime knows about, in increasing dispatch cost
EXECUTORS: Tuple[str, ...] = ("serial", "thread", "process", "shared")

_P = TypeVar("_P")
_R = TypeVar("_R")


def require_executor(
    executor: str, supported: Sequence[str], model: str
) -> str:
    """Validate ``executor`` against a model's dependence structure.

    Returns the executor unchanged when legal; raises
    :class:`~repro.errors.ValidationError` naming the model and its legal
    set otherwise, so the CLI surfaces an actionable message instead of a
    deep executor-specific failure.
    """
    if executor not in EXECUTORS:
        raise ValidationError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}"
        )
    if executor not in supported:
        raise ValidationError(
            f"model {model!r} supports executors {tuple(supported)}, "
            f"got {executor!r}"
        )
    return executor


def map_tasks(
    fn: Callable[[_P], _R],
    payloads: Iterable[_P],
    *,
    executor: str = "serial",
    n_workers: int = 4,
) -> Iterator[_R]:
    """Apply ``fn`` to each payload, yielding results in submission order.

    The in-process half of the runtime's execution surface: ``serial``
    loops inline and ``thread`` fans out over a pool (``Executor.map``
    preserves order).  ``process``/``shared`` need picklable module-level
    workers and arena publication, so drivers route those through
    :func:`repro.parallel.shared_arena.run_shared_tasks` /
    ``run_arena_tasks`` instead — passing them here is an error.
    """
    if executor == "serial":
        for payload in payloads:
            yield fn(payload)
        return
    if executor == "thread":
        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            yield from pool.map(fn, payloads)
        return
    raise ValidationError(
        f"map_tasks handles 'serial' and 'thread', got {executor!r}; "
        "route process/shared execution through repro.parallel"
    )
