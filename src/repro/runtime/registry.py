"""Driver registry: one factory for the paper's three execution models.

``make_driver`` is the seam the CLI and the analysis layer share — both
used to hand-roll per-model construction; now the model name is data and
the construction is one call.  The kernel driver is not registered here
because it runs a *user-supplied* kernel rather than a model of the
paper's computation; it still satisfies the same ``ModelDriver`` contract.

Imports are lazy: the model packages import :mod:`repro.runtime`, so a
module-level import here would be circular.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import ValidationError
from repro.events.event_set import TemporalEventSet
from repro.events.windows import WindowSpec
from repro.pagerank.config import PagerankConfig
from repro.runtime.context import DriverContext

__all__ = ["MODELS", "make_driver"]

#: the execution models of paper Section 3.3, in presentation order
MODELS: Tuple[str, ...] = ("offline", "streaming", "postmortem")


def make_driver(
    model: str,
    events: TemporalEventSet,
    spec: WindowSpec,
    config: Optional[PagerankConfig] = None,
    *,
    context: Optional[DriverContext] = None,
    program=None,
    postmortem_options=None,
    streaming_engine: str = "warm",
    streaming_block_size: int = 64,
):
    """Construct the driver for ``model`` against one event set and spec.

    ``context`` carries the runtime policy (executor, sinks, hooks);
    ``program`` selects the vertex program every model driver runs (a
    registered name or a :class:`~repro.programs.base.VertexProgram`
    instance; ``None`` means the reference PageRank program, deferring to
    any ``context.program``).  The per-model extras
    (``postmortem_options``, ``streaming_engine``,
    ``streaming_block_size``) apply only to their model and are ignored —
    deliberately, so one call site can pass a full configuration and let
    the model name select what matters — by the others.
    """
    if model not in MODELS:
        raise ValidationError(
            f"unknown model {model!r}; expected one of {MODELS}"
        )
    if config is None:
        config = PagerankConfig()

    if model == "offline":
        from repro.models.offline import OfflineDriver

        return OfflineDriver(
            events, spec, config, context=context, program=program
        )
    if model == "streaming":
        from repro.streaming.driver import StreamingDriver

        return StreamingDriver(
            events,
            spec,
            config,
            block_size=streaming_block_size,
            engine=streaming_engine,
            context=context,
            program=program,
        )

    from repro.models.postmortem import PostmortemDriver, PostmortemOptions

    if postmortem_options is None:
        postmortem_options = PostmortemOptions()
    return PostmortemDriver(
        events, spec, config, postmortem_options, context=context,
        program=program,
    )
