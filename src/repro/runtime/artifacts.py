"""Run-artifact discovery: from "a path" to "the rank store to serve".

The runtime's sinks write servable ``.rankstore`` artifacts wherever a
run pointed them (``run --store``), and operational commands (``serve``,
``query``, the cluster bench) want to accept *that directory* rather
than a memorized filename.  This module resolves a user-supplied path:

* a rank-store file resolves to itself (validated by magic);
* a directory is scanned one level deep for rank stores, each described
  by its own run metadata (model, dimensions, file time) — exactly one
  candidate resolves, several raise an error that lists them so the user
  can name one explicitly.

Scanning opens each candidate store only to read its O(1) preamble +
index, never the matrix, so discovery over a directory of multi-GB
artifacts stays instant.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Union

from repro.errors import ValidationError
from repro.service.store import RankStore, is_rank_store

__all__ = ["RankStoreCandidate", "discover_rank_store", "find_rank_stores"]

PathLike = Union[str, os.PathLike]


@dataclass(frozen=True)
class RankStoreCandidate:
    """One discovered store and the metadata that identifies it."""

    path: str
    model: str
    n_windows: int
    n_vertices: int
    mtime: float

    def describe(self) -> str:
        return (
            f"{self.path}  ({self.model}, {self.n_windows} windows x "
            f"{self.n_vertices} vertices)"
        )


def _describe(path: str) -> RankStoreCandidate:
    with RankStore(path) as store:
        return RankStoreCandidate(
            path=path,
            model=store.model,
            n_windows=store.n_windows,
            n_vertices=store.n_vertices,
            mtime=os.path.getmtime(path),
        )


def find_rank_stores(directory: PathLike) -> List[RankStoreCandidate]:
    """Every rank store directly inside ``directory``, newest first."""
    root = os.fspath(directory)
    found: List[RankStoreCandidate] = []
    for name in sorted(os.listdir(root)):
        path = os.path.join(root, name)
        if os.path.isfile(path) and is_rank_store(path):
            found.append(_describe(path))
    found.sort(key=lambda c: c.mtime, reverse=True)
    return found


def discover_rank_store(path: PathLike) -> str:
    """Resolve a file-or-directory path to one rank store path.

    Raises :class:`~repro.errors.ValidationError` when the path is not a
    store, holds no store, or holds several (listing every candidate).
    """
    p = os.fspath(path)
    if os.path.isfile(p):
        if not is_rank_store(p):
            raise ValidationError(
                f"{p} is not a rank store (bad magic); write one with "
                "`run --store PATH`"
            )
        return p
    if not os.path.isdir(p):
        raise ValidationError(f"no such file or directory: {p}")
    candidates = find_rank_stores(p)
    if not candidates:
        raise ValidationError(
            f"no rank stores found in {p}; write one with "
            "`run --store PATH`"
        )
    if len(candidates) > 1:
        listing = "\n  ".join(c.describe() for c in candidates)
        raise ValidationError(
            f"{p} holds {len(candidates)} rank stores; name one "
            f"explicitly:\n  {listing}"
        )
    return candidates[0].path
