"""The ``ModelDriver`` protocol: the one contract every driver satisfies.

A model driver is anything that can run the paper's windowed-PageRank
computation end to end and produce a :class:`~repro.models.base.RunResult`.
The protocol pins the surface the CLI, the analysis layer, and the parity
tests rely on:

* ``model_name`` — stable identifier (``"offline"``, ``"streaming"``,
  ``"postmortem"``, ``"kernel"``),
* ``supported_executors`` — the subset of
  :data:`repro.runtime.execution.EXECUTORS` the model's dependence
  structure permits,
* ``run(store_values=..., value_sink=..., progress=...)`` — the uniform
  entry point.  ``value_sink`` streams each window's vector as it is
  solved (see :mod:`repro.runtime.sinks`); ``progress`` is called as
  ``progress(done, total)``.

Drivers remain plain classes — the protocol is ``runtime_checkable`` so
tests can assert conformance without inheritance coupling.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence, runtime_checkable

from repro.models.base import RunResult
from repro.runtime.context import ProgressFn
from repro.runtime.sinks import Sink

__all__ = ["ModelDriver", "record_run_metadata"]


@runtime_checkable
class ModelDriver(Protocol):
    """Structural type for the four execution-model drivers."""

    model_name: str
    supported_executors: Sequence[str]

    def run(
        self,
        store_values: bool = True,
        *,
        value_sink: Optional[Sink] = None,
        progress: Optional[ProgressFn] = None,
    ) -> RunResult:
        """Solve every window; return the in-memory run summary."""
        ...


def record_run_metadata(
    result: RunResult, *, executor: str, n_workers: int, n_windows: int
) -> None:
    """Stamp the uniform runtime metadata every driver reports.

    One helper instead of four hand-rolled dict writes keeps the keys
    identical across models, which is what the comparison layer and the
    benchmark harness key on.
    """
    result.metadata["executor"] = executor
    result.metadata["n_workers"] = n_workers if executor != "serial" else 1
    result.metadata["n_windows"] = n_windows
