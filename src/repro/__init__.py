"""repro — postmortem computation of PageRank on temporal graphs.

A production-quality reproduction of Hossain & Saule, *"Postmortem
Computation of Pagerank on Temporal Graphs"*, ICPP 2022: the temporal-CSR
representation, multi-window partitioning, partial initialization, SpMV and
SpMM-inspired kernels, the offline and streaming (STINGER-like) baselines,
and a parallel substrate (real work-stealing pool + calibrated simulated
machine) that regenerates every figure of the paper's evaluation.

Quickstart::

    from repro import (TemporalEventSet, WindowSpec, PostmortemDriver,
                       PagerankConfig)
    events = TemporalEventSet(src, dst, timestamps)
    spec = WindowSpec.covering(events, delta=90 * 86400, sw=86400)
    result = PostmortemDriver(events, spec, PagerankConfig()).run()
    for window in result.windows:
        print(window.window_index, window.top_vertices(5))
"""

from repro.errors import (
    ReproError,
    ValidationError,
    EmptyEventSetError,
    WindowSpecError,
    GraphBuildError,
    ConvergenceError,
    SchedulerError,
    DatasetError,
    LockOrderError,
)
from repro.sanitize import (
    enable_sanitizers,
    disable_sanitizers,
    sanitizers_enabled,
)
from repro.events import (
    TemporalEventSet,
    WindowSpec,
    Window,
    load_events_tsv,
    save_events_tsv,
    load_events_npz,
    save_events_npz,
)
from repro.graph import (
    CSRGraph,
    build_csr_from_edges,
    TemporalCSR,
    TemporalAdjacency,
    WindowView,
    MultiWindowGraph,
    MultiWindowPartition,
)
from repro.pagerank import (
    PagerankConfig,
    PagerankResult,
    BatchPagerankResult,
    WorkStats,
    pagerank_window,
    pagerank_windows_spmm,
    full_initialization,
    partial_initialization,
)
from repro.models import (
    RunResult,
    WindowResult,
    OfflineDriver,
    PostmortemDriver,
    PostmortemOptions,
)
from repro.streaming import StreamingDriver, StreamingGraph
from repro.runtime import (
    DriverContext,
    ModelDriver,
    chain_sinks,
    make_driver,
)
from repro.datasets import get_profile, list_profiles, DatasetRegistry
from repro.analysis import compare_models, ModelTiming, edge_distribution
from repro.parallel import (
    MachineSpec,
    CostModel,
    calibrate_cost_model,
    collect_window_stats,
    estimate_makespan,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ValidationError",
    "EmptyEventSetError",
    "WindowSpecError",
    "GraphBuildError",
    "ConvergenceError",
    "SchedulerError",
    "DatasetError",
    "LockOrderError",
    # sanitizers
    "enable_sanitizers",
    "disable_sanitizers",
    "sanitizers_enabled",
    # events
    "TemporalEventSet",
    "WindowSpec",
    "Window",
    "load_events_tsv",
    "save_events_tsv",
    "load_events_npz",
    "save_events_npz",
    # graphs
    "CSRGraph",
    "build_csr_from_edges",
    "TemporalCSR",
    "TemporalAdjacency",
    "WindowView",
    "MultiWindowGraph",
    "MultiWindowPartition",
    # pagerank
    "PagerankConfig",
    "PagerankResult",
    "BatchPagerankResult",
    "WorkStats",
    "pagerank_window",
    "pagerank_windows_spmm",
    "full_initialization",
    "partial_initialization",
    # models
    "RunResult",
    "WindowResult",
    "OfflineDriver",
    "PostmortemDriver",
    "PostmortemOptions",
    "StreamingDriver",
    "StreamingGraph",
    # runtime
    "DriverContext",
    "ModelDriver",
    "chain_sinks",
    "make_driver",
    # datasets
    "get_profile",
    "list_profiles",
    "DatasetRegistry",
    # analysis
    "compare_models",
    "ModelTiming",
    "edge_distribution",
    # parallel
    "MachineSpec",
    "CostModel",
    "calibrate_cost_model",
    "collect_window_stats",
    "estimate_makespan",
    "__version__",
]
