"""Ablation — uniform vs work-balanced multi-window partitioning.

The paper's Section 7 names non-uniform decomposition as future work:
"we partitioned the temporal data in multi-windows with equal number of
graphs, but this may not be the decomposition that minimize memory and
work overheads".  This ablation implements it
(:mod:`repro.graph.balanced`) and measures the effect on the spike-shaped
datasets where uniform splits are most imbalanced.

Reported per dataset: the bottleneck run work (max over multi-window
graphs of |E_w| x windows) and the measured serial postmortem time, for
the paper's uniform split vs the minimax-balanced split.

Run:  pytest benchmarks/bench_ablation_partition.py --benchmark-only -s
"""

from __future__ import annotations

from benchmarks._common import BENCH_CONFIG, emit, get_events, spec_for
from repro.graph import BalancedMultiWindowPartition, MultiWindowPartition
from repro.graph.balanced import run_work
from repro.models import PostmortemDriver, PostmortemOptions
from repro.reporting import format_table
from repro.utils.timer import Timer

CONFIGS = [
    ("ia-enron-email", 730.0, 172_800),
    ("epinions-user-ratings", 60.0, 86_400),
    ("wiki-talk", 90.0, 259_200),
]
Y = 6


def measure(events, spec, method: str):
    opts = PostmortemOptions(n_multiwindows=Y, partition_method=method)
    driver = PostmortemDriver(events, spec, BENCH_CONFIG, opts)
    with Timer() as t:
        driver.run(store_values=False)
    part = driver.partition
    bottleneck = max(
        run_work(events, spec, g.first_window, g.first_window + g.n_windows)
        for g in part
    )
    return t.elapsed, bottleneck, part.total_stored_events


def run_ablation():
    rows = []
    gains = []
    for name, ws, sw in CONFIGS:
        events = get_events(name)
        spec = spec_for(events, ws, sw)
        t_u, work_u, stored_u = measure(events, spec, "uniform")
        t_b, work_b, stored_b = measure(events, spec, "minimax")
        gains.append(work_u / max(work_b, 1))
        rows.append(
            [
                name,
                spec.n_windows,
                f"{work_u:,}",
                f"{work_b:,}",
                round(work_u / max(work_b, 1), 2),
                round(t_u, 3),
                round(t_b, 3),
                round(stored_b / max(stored_u, 1), 2),
            ]
        )
    text = format_table(
        [
            "dataset",
            "#win",
            "bottleneck(uniform)",
            "bottleneck(minimax)",
            "work gain",
            "t uniform(s)",
            "t minimax(s)",
            "storage ratio",
        ],
        rows,
        title=(
            "Ablation: uniform vs minimax-balanced multi-window partition "
            f"(Y={Y}, serial)"
        ),
    )
    return text, gains


def test_ablation_partition(benchmark):
    text, gains = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit("ablation_partition", text)
    # balancing never increases the bottleneck, and helps on at least one
    # spike-shaped dataset
    assert all(g >= 0.999 for g in gains)
    assert max(gains) > 1.2
