"""Figure 12 — suggested-parameter performance on wiki-talk.

The paper's closing recommendation (Section 6.3.6): SpMM kernel, auto
partitioner with granularity <= 4, nested parallelization.  This bench
evaluates exactly that fixed configuration over the wiki-talk (sliding
offset x window size) grid and compares each cell against the Figure 11
best-of-search value: "the configuration does not report the best
performance but reports very honorable performance at little tuning cost".

Run:  pytest benchmarks/bench_fig12_suggested.py --benchmark-only -s
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import (
    PAPER_CORES,
    cost_model,
    emit,
    get_events,
    postmortem_stats,
    spec_for,
    streaming_seconds,
)
from benchmarks.bench_fig11_best_speedup import best_postmortem_seconds
from repro.datasets import get_profile
from repro.parallel import AUTO, MachineSpec
from repro.parallel.levels import estimate_makespan
from repro.reporting import format_heatmap

SUGGESTED = dict(level="nested", partitioner=AUTO, granularity=4,
                 kernel="spmm", vector_length=16)
WINDOW_SIZES = [10.0, 15.0, 90.0, 180.0]


def run_fig12():
    profile = get_profile("wiki-talk")
    events = get_events("wiki-talk")
    sws = list(profile.sliding_offsets)
    model = cost_model()
    machine = MachineSpec(PAPER_CORES)

    grid = np.zeros((len(WINDOW_SIZES), len(sws)))
    ratio_to_best = np.zeros_like(grid)
    for i, ws in enumerate(WINDOW_SIZES):
        for j, sw in enumerate(sws):
            spec = spec_for(events, ws, sw)
            t_stream = streaming_seconds("wiki-talk", spec)
            stats = postmortem_stats("wiki-talk", spec, 6)
            t_suggested = estimate_makespan(
                stats,
                machine,
                model,
                SUGGESTED["level"],
                SUGGESTED["partitioner"],
                SUGGESTED["granularity"],
                SUGGESTED["kernel"],
                SUGGESTED["vector_length"],
            )
            grid[i, j] = t_stream / t_suggested
            ratio_to_best[i, j] = t_suggested / best_postmortem_seconds(
                "wiki-talk", spec
            )
    text = format_heatmap(
        grid,
        [f"{w:.0f}" for w in WINDOW_SIZES],
        [str(s) for s in sws],
        row_title="window(d)",
        col_title="offset(s)",
        title=(
            "Figure 12: postmortem speedup over streaming with the "
            "suggested parameters (nested, auto, granularity 4, SpMM-16; "
            f"simulated {PAPER_CORES} cores)"
        ),
    )
    return text, grid, ratio_to_best


def test_fig12_suggested(benchmark):
    text, grid, ratio = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    emit("fig12_suggested", text)

    # honorable everywhere: still a big win over streaming ...
    assert grid.min() > 5.0
    # ... and within a small factor of the per-cell best configuration
    assert np.median(ratio) < 3.0
    assert ratio.max() < 8.0
