"""Ablation — the memory/work tradeoff of the multi-window count Y.

Section 4.1: more multi-window graphs shrink the per-SpMV traversal
(Θ(|E_w|) instead of Θ(|Events|)) but replicate boundary-spanning events
(Σ_w |E_w| >= |Events|) and inflate the representation memory.  Section
6.3.3 says Y should be "large enough" and then stops mattering; this
ablation quantifies both axes at once: memory (paper formula + allocated
bytes) and measured serial solve time, per Y.

Run:  pytest benchmarks/bench_ablation_memory.py --benchmark-only -s
"""

from __future__ import annotations

from benchmarks._common import BENCH_CONFIG, emit, get_events, spec_for
from repro.analysis import memory_report
from repro.models import PostmortemDriver, PostmortemOptions
from repro.reporting import format_table
from repro.utils.timer import Timer

MULTIWINDOW_COUNTS = [1, 2, 6, 16, 48, 120]


def run_ablation():
    events = get_events("wiki-talk")
    spec = spec_for(events, 90.0, 43_200)
    rows = []
    times = []
    memories = []
    for y in MULTIWINDOW_COUNTS:
        opts = PostmortemOptions(n_multiwindows=y)
        driver = PostmortemDriver(events, spec, BENCH_CONFIG, opts)
        with Timer() as t:
            driver.run(store_values=False)
        report = memory_report(driver.partition)
        times.append(t.elapsed)
        memories.append(report.total_allocated_bytes)
        rows.append(
            [
                y,
                round(report.replication_factor, 2),
                f"{report.total_model_bytes / 1024:.0f} KiB",
                f"{report.total_allocated_bytes / 1024:.0f} KiB",
                round(report.overhead_vs_raw, 2),
                f"{report.pagerank_workspace_bytes(16) / 1024:.0f} KiB",
                round(t.elapsed, 3),
            ]
        )
    text = format_table(
        [
            "Y",
            "replication",
            "model bytes (paper formula)",
            "allocated",
            "vs raw log",
            "SpMM-16 workspace",
            "serial solve (s)",
        ],
        rows,
        title=(
            "Ablation: multi-window count vs memory and work "
            f"(wiki-talk, {spec.n_windows} windows)"
        ),
    )
    return text, times, memories


def test_ablation_memory(benchmark):
    text, times, memories = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    emit("ablation_memory", text)

    y = MULTIWINDOW_COUNTS
    # work: Y=6 beats Y=1 clearly (the Θ(|Events|)-per-SpMV pathology)
    assert times[y.index(6)] < times[y.index(1)]
    # memory: replication grows with Y
    assert memories[-1] >= memories[0]
