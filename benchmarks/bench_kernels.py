"""Kernel microbenchmarks — the building blocks behind every figure.

Times the individual operations whose calibrated costs drive the simulated
machine: temporal-CSR construction, window-mask computation, one SpMV
window solve, one SpMM batch solve, streaming structure updates, and the
offline per-window rebuild.

Run:  pytest benchmarks/bench_kernels.py --benchmark-only
"""

from __future__ import annotations

import pytest

from benchmarks._common import BENCH_CONFIG, get_events
from repro.events import WindowSpec
from repro.graph import MultiWindowPartition, TemporalAdjacency, build_csr_from_edges
from repro.pagerank import pagerank_window, pagerank_windows_spmm
from repro.streaming.stinger import StreamingGraph


@pytest.fixture(scope="module")
def events():
    return get_events("wiki-talk")


@pytest.fixture(scope="module")
def spec(events):
    return WindowSpec.covering_days(events, 90, 86_400 * 20)


@pytest.fixture(scope="module")
def adjacency(events):
    return TemporalAdjacency.from_events(events)


def test_temporal_csr_build(benchmark, events):
    adj = benchmark(TemporalAdjacency.from_events, events)
    assert adj.nnz == len(events)


def test_multiwindow_partition_build(benchmark, events, spec):
    part = benchmark(MultiWindowPartition, events, spec, 6)
    assert len(part) == 6


def test_window_mask_computation(benchmark, adjacency, spec):
    w = spec.window(spec.n_windows // 2)
    view = benchmark(adjacency.window_view, w)
    assert view.n_active_edges >= 0


def test_spmv_window_solve(benchmark, adjacency, spec):
    view = adjacency.window_view(spec.window(spec.n_windows - 1))
    result = benchmark(pagerank_window, view, BENCH_CONFIG)
    assert result.converged


def test_spmm_batch_solve_8(benchmark, adjacency, spec):
    views = [
        adjacency.window_view(spec.window(i))
        for i in range(spec.n_windows - 8, spec.n_windows)
    ]
    result = benchmark(pagerank_windows_spmm, views, BENCH_CONFIG)
    assert result.converged.all()


def test_offline_window_rebuild(benchmark, events, spec):
    w = spec.window(spec.n_windows - 1)

    def rebuild():
        src, dst = events.edges_between(w.t_start, w.t_end)
        return build_csr_from_edges(src, dst, events.n_vertices)

    g = benchmark(rebuild)
    assert g.n_edges > 0


def test_streaming_full_pass(benchmark, events, spec):
    def stream_all():
        s = StreamingGraph(events)
        for w in spec:
            s.advance_to(w)
        return s

    s = benchmark.pedantic(stream_all, rounds=3, iterations=1)
    assert s.adjacency.entries_inserted > 0
