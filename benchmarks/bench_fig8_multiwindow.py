"""Figure 8 — impact of the number of multi-window graphs.

wiki-talk with ~1024 windows, auto_partitioner, sweeping the multi-window
count Y across {6, 32, 256, 512, 1024} for each parallelization level.

Expected shape (paper Section 6.3.3): too few multi-windows means every
SpMV traverses events belonging to many other windows (high overhead);
"once the number of multi-window is large enough, the performance no
longer varies".

Run:  pytest benchmarks/bench_fig8_multiwindow.py --benchmark-only -s
"""

from __future__ import annotations

import dataclasses

from benchmarks._common import (
    PAPER_CORES,
    cost_model,
    emit,
    get_events,
    postmortem_stats,
    spec_with_n_windows,
    streaming_seconds,
)
from repro.parallel import AUTO, MachineSpec
from repro.parallel.levels import estimate_makespan
from repro.reporting import format_series

MULTIWINDOWS = [6, 32, 256, 512, 1024]
GRANULARITIES = [1, 4, 16, 64, 256]
N_WINDOWS = 1024
DELTA_DAYS = 90.0


def run_fig8():
    events = get_events("wiki-talk")
    spec = spec_with_n_windows(events, DELTA_DAYS, N_WINDOWS)
    t_stream = streaming_seconds("wiki-talk", spec)
    model = cost_model()
    machine = MachineSpec(PAPER_CORES)

    blocks = []
    by_level = {}
    for level, label in (
        ("application", "PR Level Parallelization"),
        ("window", "Window Level Parallelization"),
        ("nested", "Nested Parallelization"),
    ):
        series = {}
        for y in MULTIWINDOWS:
            stats = postmortem_stats("wiki-talk", spec, n_multiwindows=y)
            stats = dataclasses.replace(stats, build_seconds=0.0)
            ys = []
            for g in GRANULARITIES:
                t = estimate_makespan(
                    stats, machine, model, level, AUTO, g, "spmv"
                )
                ys.append(t_stream / t)
            series[f"Multi-Windows={y}"] = ys
        by_level[level] = series
        blocks.append(
            format_series(
                "granularity",
                GRANULARITIES,
                series,
                title=(
                    f"Figure 8 — {label} (wiki-talk, {spec.n_windows} "
                    f"windows, auto_partitioner, speedup over streaming, "
                    f"simulated {PAPER_CORES} cores)"
                ),
                precision=1,
            )
        )
    return "\n\n".join(blocks), by_level


def test_fig8_multiwindow(benchmark):
    text, by_level = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    emit("fig8_multiwindow", text)

    for level, series in by_level.items():
        small = series[f"Multi-Windows={MULTIWINDOWS[0]}"]
        big = series[f"Multi-Windows={MULTIWINDOWS[-2]}"]
        bigger = series[f"Multi-Windows={MULTIWINDOWS[-1]}"]
        # more multi-windows helps (less out-of-window traversal) ...
        assert max(big) > max(small), level
        # ... and saturates: 512 vs 1024 differ by < 35%
        assert abs(max(bigger) - max(big)) / max(big) < 0.35, level
