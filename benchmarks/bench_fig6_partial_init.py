"""Figure 6 — impact of partial initialization.

For stackoverflow and wiki-talk, measures the serial postmortem run with
full initialization vs partial initialization across the paper's window
sizes (10, 15, 90, 180 days) at the paper's 12-hour sliding offset (scaled
by an integer factor to bound the window count; the offset is printed).

Expected shape (paper): speedup > 1 everywhere, growing with the window
size (larger windows overlap more, so consecutive PageRank vectors are more
similar and the warm start saves more iterations); the paper measures
1.5–3.5x in C++ at tolerance-free STINGER settings — magnitudes here are
smaller because the scaled sparse instances converge in fewer iterations.

Run:  pytest benchmarks/bench_fig6_partial_init.py --benchmark-only -s
"""

from __future__ import annotations

from benchmarks._common import BENCH_CONFIG, emit, get_events, spec_for
from repro.models import PostmortemDriver, PostmortemOptions
from repro.reporting import format_series
from repro.utils.timer import Timer

DATASETS = ["stackoverflow", "wiki-talk"]
WINDOW_SIZES = [10.0, 15.0, 90.0, 180.0]
SW = 43_200  # the paper's 12-hour offset


def measure(events, spec, partial: bool):
    opts = PostmortemOptions(n_multiwindows=6, partial_init=partial)
    driver = PostmortemDriver(events, spec, BENCH_CONFIG, opts)
    with Timer() as t:
        run = driver.run(store_values=False)
    return t.elapsed, run.total_iterations


def run_fig6():
    blocks = []
    ratios = {}
    for name in DATASETS:
        events = get_events(name)
        speedups, iter_ratios, labels = [], [], []
        for ws in WINDOW_SIZES:
            # the true 12 h offset matters here: partial initialization's
            # gain comes from the tiny per-slide change, so the offset is
            # NOT scaled down for this figure (thousands of windows)
            spec = spec_for(events, ws, SW, max_windows=6_000)
            t_full, it_full = measure(events, spec, partial=False)
            t_part, it_part = measure(events, spec, partial=True)
            speedups.append(t_full / t_part)
            iter_ratios.append(it_full / max(it_part, 1))
            labels.append(f"{ws:.0f}d")
        ratios[name] = (labels, speedups, iter_ratios)
        blocks.append(
            format_series(
                "window size",
                labels,
                {
                    "time full/partial": speedups,
                    "iters full/partial": iter_ratios,
                },
                title=(
                    f"Figure 6 ({name}): partial-initialization speedup, "
                    f"sliding offset {SW}s (paper value)"
                ),
            )
        )
    return "\n\n".join(blocks), ratios


def test_fig6_partial_init(benchmark):
    text, ratios = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    emit("fig6_partial_init", text)

    for name, (labels, speedups, iter_ratios) in ratios.items():
        # partial init must reduce iterations on the larger windows...
        assert iter_ratios[-1] > 1.0, name
        # ... and the gain must grow from the smallest to the largest
        # window (the paper's correlation with window size)
        assert iter_ratios[-1] >= iter_ratios[0] - 0.05, name
