"""Active-edge compaction: per-iteration cost, parity and the auto policy.

The masked kernels touch all ``nnz`` stored events of their multi-window
graph every power iteration; compaction
(:mod:`repro.pagerank.compaction`) packs each window's active deduped
edges once and iterates over the Θ(|E_w|) packed arrays.  This bench
answers three questions on a realistic profile:

* **How much cheaper is an iteration?**  A low-activity window (active
  ratio ≤ 0.25) must run its iterations ≥ 2x faster compacted than
  masked — the tentpole acceptance claim.
* **Is it still the same answer?**  The compacted spmv/weighted/spmm
  paths must match the masked paths *bitwise* (sequential
  ``segment_sum_ordered`` makes zero-dropping exact); the
  propagation-blocking kernel (inherently compacted) must match spmv to
  tight tolerance.
* **Can ``edge_path="auto"`` be trusted?**  The adaptive choice must
  land within 10% of whichever fixed path is actually faster.

Wall-clock on a shared CI box is noise, so the *guarded* regression
metrics are ratios: traversed-events fractions (pure code facts) and
same-machine time ratios (masked and compacted run back to back on the
same data).  Results are printed, persisted as text, and emitted as JSON
(``benchmarks/output/edge_compaction.json``); the committed baseline is
``benchmarks/BENCH_edge_compaction.json``.

Run:  pytest benchmarks/bench_edge_compaction.py -s
"""

from __future__ import annotations

import json
import time
from dataclasses import replace

import numpy as np

from benchmarks._common import (
    BENCH_CONFIG,
    OUTPUT_DIR,
    emit,
    get_events,
    spec_for,
)
from repro.graph import MultiWindowPartition
from repro.pagerank import (
    Workspace,
    compact_pull_union,
    pagerank_window,
    pagerank_window_pb,
    pagerank_window_weighted,
    pagerank_windows_spmm,
)
from repro.reporting import format_table

PROFILE = "stackoverflow"
DELTA_DAYS = 30
SW_SECONDS = 86_400
MAX_WINDOWS = 48
SPMM_BATCH = 8
REPEATS = 3

#: acceptance bounds — per-iteration speedup of the compacted path on a
#: window with activity ratio ≤ LOW_ACTIVITY, and the auto policy's
#: allowed slack over the better fixed path
LOW_ACTIVITY = 0.25
MIN_SPEEDUP = 2.0
AUTO_SLACK = 1.10


def _timed(solve, repeats: int = REPEATS):
    """Best-of-``repeats`` wall time (fresh workspace each run, so the
    pack pass and buffer-pool warmup are inside the measurement)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        ws = Workspace()
        t0 = time.perf_counter()
        result = solve(ws)
        best = min(best, time.perf_counter() - t0)
    return result, best


def _spmv_configs():
    return {
        path: replace(BENCH_CONFIG, edge_path=path)
        for path in ("masked", "compacted", "auto")
    }


def test_edge_compaction():
    events = get_events(PROFILE)
    spec = spec_for(events, DELTA_DAYS, SW_SECONDS, max_windows=MAX_WINDOWS)

    # one multi-window graph over the whole span: every window is a thin
    # activity slice of the shared structure — the regime compaction targets
    graph = MultiWindowPartition(events, spec, 1).graphs[0]
    nnz = graph.nnz
    views = [graph.window_view(i) for i in graph.window_indices()]
    ratios = np.array(
        [v.n_active_edges / nnz for v in views], dtype=np.float64
    )

    # the guarded window: the busiest one still under the low-activity
    # bound (the hardest case the ≥2x claim must survive)
    low = [j for j in range(len(views)) if 0 < ratios[j] <= LOW_ACTIVITY]
    assert low, f"no window under activity ratio {LOW_ACTIVITY}"
    j_low = max(low, key=lambda j: ratios[j])
    view = views[j_low]
    activity_ratio = float(ratios[j_low])

    configs = _spmv_configs()

    # -- spmv: parity + per-iteration cost on the guarded window ---------
    runs, seconds = {}, {}
    for path, cfg in configs.items():
        runs[path], seconds[path] = _timed(
            lambda ws, cfg=cfg: pagerank_window(view, cfg, workspace=ws)
        )
    spmv_match = (
        runs["masked"].iterations == runs["compacted"].iterations
        and np.array_equal(runs["masked"].values, runs["compacted"].values)
        and np.array_equal(runs["masked"].values, runs["auto"].values)
    )
    iters = runs["masked"].iterations
    periter = {p: seconds[p] / iters for p in configs}
    speedup = periter["masked"] / periter["compacted"]
    traversal_ratio = (
        runs["compacted"].work.edge_traversals
        / runs["masked"].work.edge_traversals
    )
    better_fixed = min(seconds["masked"], seconds["compacted"])
    auto_within_bound = seconds["auto"] <= AUTO_SLACK * better_fixed

    # -- weighted: parity on the same window -----------------------------
    w_runs = {
        path: pagerank_window_weighted(view, cfg, workspace=Workspace())
        for path, cfg in configs.items()
    }
    weighted_match = (
        w_runs["masked"].iterations == w_runs["compacted"].iterations
        and np.array_equal(
            w_runs["masked"].values, w_runs["compacted"].values
        )
        and np.array_equal(w_runs["masked"].values, w_runs["auto"].values)
    )

    # -- propagation blocking (inherently compacted) vs spmv -------------
    pb = pagerank_window_pb(view, BENCH_CONFIG, workspace=Workspace())
    pb_match_close = pb.iterations == iters and bool(
        np.allclose(pb.values, runs["masked"].values, atol=1e-12)
    )

    # -- spmm: the strided batch's packed union --------------------------
    stride = max(1, len(views) // SPMM_BATCH)
    batch = views[::stride][:SPMM_BATCH]
    union_fraction = compact_pull_union(batch).n_edges / nnz
    m_runs, m_seconds = {}, {}
    for path, cfg in configs.items():
        m_runs[path], m_seconds[path] = _timed(
            lambda ws, cfg=cfg: pagerank_windows_spmm(
                batch, cfg, workspace=ws
            )
        )
    spmm_match = (
        np.array_equal(
            m_runs["masked"].iterations_per_window,
            m_runs["compacted"].iterations_per_window,
        )
        and np.array_equal(
            m_runs["masked"].values, m_runs["compacted"].values
        )
        and np.array_equal(m_runs["masked"].values, m_runs["auto"].values)
    )
    spmm_iters = int(m_runs["masked"].work.iterations)
    spmm_periter = {p: m_seconds[p] / spmm_iters for p in configs}
    spmm_speedup = spmm_periter["masked"] / spmm_periter["compacted"]
    spmm_better = min(m_seconds["masked"], m_seconds["compacted"])
    spmm_auto_ok = m_seconds["auto"] <= AUTO_SLACK * spmm_better

    payload = {
        "profile": {
            "name": PROFILE,
            "events": len(events),
            "vertices": events.n_vertices,
            "windows": spec.n_windows,
            "nnz": nnz,
            "activity_ratio_min": float(ratios[ratios > 0].min()),
            "activity_ratio_max": float(ratios.max()),
        },
        "spmv": {
            "window": int(view.window.index),
            "activity_ratio": activity_ratio,
            "iterations": int(iters),
            "periter_masked_ms": round(periter["masked"] * 1e3, 4),
            "periter_compacted_ms": round(periter["compacted"] * 1e3, 4),
            "periter_auto_ms": round(periter["auto"] * 1e3, 4),
            "speedup": round(speedup, 3),
            "speedup_ok": bool(
                activity_ratio <= LOW_ACTIVITY and speedup >= MIN_SPEEDUP
            ),
            "traversal_ratio": round(float(traversal_ratio), 5),
            "periter_ratio": round(periter["compacted"] / periter["masked"], 5),
            "match_exact": bool(spmv_match),
        },
        "weighted": {"match_exact": bool(weighted_match)},
        "pb": {"match_close": bool(pb_match_close)},
        "spmm": {
            "batch": len(batch),
            "union_fraction": round(float(union_fraction), 5),
            "periter_masked_ms": round(spmm_periter["masked"] * 1e3, 4),
            "periter_compacted_ms": round(spmm_periter["compacted"] * 1e3, 4),
            "speedup": round(spmm_speedup, 3),
            "periter_ratio": round(
                spmm_periter["compacted"] / spmm_periter["masked"], 5
            ),
            "match_exact": bool(spmm_match),
            "auto_within_bound": bool(spmm_auto_ok),
        },
        "auto_within_bound": bool(auto_within_bound),
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "edge_compaction.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [
        ["spmv", f"{activity_ratio:.3f}", f"{periter['masked'] * 1e3:.3f}",
         f"{periter['compacted'] * 1e3:.3f}", f"{speedup:.2f}x",
         "bitwise" if spmv_match else "DIVERGED"],
        ["spmm", f"{union_fraction:.3f}",
         f"{spmm_periter['masked'] * 1e3:.3f}",
         f"{spmm_periter['compacted'] * 1e3:.3f}", f"{spmm_speedup:.2f}x",
         "bitwise" if spmm_match else "DIVERGED"],
    ]
    text = format_table(
        ["kernel", "active/nnz", "masked ms/it", "compacted ms/it",
         "speedup", "parity"],
        rows,
        title=(
            f"edge compaction on {PROFILE} ({nnz:,} stored events, "
            f"{spec.n_windows} windows; window {view.window.index}, "
            f"{iters} iterations)"
        ),
    )
    text += (
        f"\n\nweighted parity: "
        f"{'bitwise' if weighted_match else 'DIVERGED'}; "
        f"pb vs spmv: {'close' if pb_match_close else 'DIVERGED'}"
        f"\nauto within {AUTO_SLACK:.2f}x of better fixed path: "
        f"spmv={auto_within_bound} spmm={spmm_auto_ok}"
    )
    emit("edge_compaction", text)

    # the acceptance claims
    assert spmv_match and weighted_match and spmm_match and pb_match_close
    assert activity_ratio <= LOW_ACTIVITY
    assert speedup >= MIN_SPEEDUP, f"speedup {speedup:.2f}x < {MIN_SPEEDUP}x"
    assert auto_within_bound and spmm_auto_ok
