"""Kernel backends: parity, partitioned-reduce cost, and the auto policy.

The backend registry (:mod:`repro.pagerank.backends`) lets every kernel
swap its per-iteration gather→reduce step between the flat NumPy
reference, the PCPM-style destination-partitioned reduce, and the
(optional) numba JIT-fused variant.  This bench answers three questions:

* **Is it always the same answer?**  Every backend must match the numpy
  reference *bitwise* on a realistic window, for all four kernels (spmv,
  weighted, spmm, pb) — the tentpole acceptance claim.
* **What does the slice-at-a-time NumPy partitioning cost?**  Measured
  per-iteration propagate time at large V for numpy vs pcpm, plus the
  one-time binning cost.  On a JIT-less host the pcpm path is a measured
  *overhead* (the gather stays random over the full rank vector; only the
  fused reduce realizes the locality win) — the ratio is recorded and
  guarded so it cannot silently grow.
* **Can ``backend="auto"`` be trusted?**  The resolved choice must land
  within 10% of whichever fixed backend is actually faster.  Without
  numba the cost model prices pcpm with no locality discount
  (``fused=False``) and correctly stays flat.

Results are printed, persisted as text, and emitted as JSON
(``benchmarks/output/backends.json``); the committed baseline is
``benchmarks/BENCH_backends.json``.

Run:  pytest benchmarks/bench_backends.py -s
"""

from __future__ import annotations

import json
import time
from dataclasses import replace

import numpy as np

from benchmarks._common import BENCH_CONFIG, OUTPUT_DIR, emit, get_events, spec_for
from repro.events import TemporalEventSet, Window
from repro.graph import TemporalAdjacency
from repro.pagerank import (
    Workspace,
    pagerank_window,
    pagerank_window_pb,
    pagerank_window_weighted,
    pagerank_windows_spmm,
)
from repro.pagerank.backends import create_backend, numba_available, resolve_backend
from repro.reporting import format_table

PROFILE = "stackoverflow"
DELTA_DAYS = 30
SW_SECONDS = 86_400
SPMM_BATCH = 4
REPEATS = 3

#: parity runs use a tiny cache budget (32 vertices/partition) so the
#: realistic window genuinely spans dozens of partitions
PARITY_BUDGET = 256

#: the large-V propagate instance: a 16 MB rank vector (64 partitions at
#: the default budget) with average in-degree 8
LARGE_V = 300_000
LARGE_M = 2_400_000

#: allowed slack of the auto policy over the better fixed backend
AUTO_SLACK = 1.10

BACKENDS = ("numpy", "pcpm", "numba", "auto")


def _best_of(fn, repeats: int = REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def _parity_flags(view, views):
    """Bitwise parity of every backend against numpy, all four kernels.

    ``edge_path="masked"`` streams the *whole* stored structure through
    each backend's plan every iteration — the largest edge list the
    partitioning will ever see (the compacted composition is covered by
    the unit tests).
    """
    cfgs = {
        b: replace(
            BENCH_CONFIG, backend=b, cache_budget=PARITY_BUDGET,
            edge_path="masked",
        )
        for b in BACKENDS
    }
    kernels = {
        "spmv": lambda cfg: pagerank_window(
            view, cfg, workspace=Workspace()
        ),
        "weighted": lambda cfg: pagerank_window_weighted(
            view, cfg, workspace=Workspace()
        ),
        "spmm": lambda cfg: pagerank_windows_spmm(
            views, cfg, workspace=Workspace()
        ),
        "pb": lambda cfg: pagerank_window_pb(
            view, cfg, workspace=Workspace()
        ),
    }
    flags = {}
    for name, solve in kernels.items():
        base = solve(cfgs["numpy"])
        flags[name] = all(
            np.array_equal(solve(cfgs[b]).values, base.values)
            for b in ("pcpm", "numba", "auto")
        )
    return flags


def _large_v_instance(seed: int = 7):
    """A destination-sorted random edge list over a rank vector that is
    far larger than the cache budget."""
    rng = np.random.default_rng(seed)
    rows = np.sort(rng.integers(0, LARGE_V, LARGE_M)).astype(np.int64)
    cols = rng.integers(0, LARGE_V, LARGE_M).astype(np.int64)
    w = rng.random(LARGE_V)
    return rows, cols, w


def test_backends():
    events = get_events(PROFILE)
    spec = spec_for(events, DELTA_DAYS, SW_SECONDS, max_windows=48)
    adj = TemporalAdjacency.from_events(events)
    all_views = [
        adj.window_view(spec.window(i)) for i in range(spec.n_windows)
    ]
    # the busiest windows: parity on a trivial slice proves nothing
    busiest = sorted(
        all_views, key=lambda v: v.n_active_edges, reverse=True
    )
    views = sorted(busiest[:SPMM_BATCH], key=lambda v: v.window.index)
    view = busiest[0]

    # -- parity: every backend bitwise vs numpy, all four kernels --------
    flags = _parity_flags(view, views)

    # -- per-iteration propagate cost at large V -------------------------
    rows, cols, w = _large_v_instance()
    periter_ms, bin_ms = {}, {}
    for name in ("numpy", "pcpm"):
        backend = create_backend(name)
        plan, t_bin = _best_of(
            lambda b=backend: b.make_plan(cols, rows, LARGE_V), 1
        )
        _, t_prop = _best_of(lambda p=plan: p.propagate(w))
        periter_ms[name] = t_prop * 1e3
        bin_ms[name] = t_bin * 1e3
    pcpm_over_numpy = periter_ms["pcpm"] / periter_ms["numpy"]

    # -- the auto gate: full kernel at large V ---------------------------
    # a full-span window over a synthetic graph whose rank vector dwarfs
    # the cache budget; auto must land within AUTO_SLACK of the better
    # fixed backend
    rng = np.random.default_rng(11)
    n_v, n_e = 150_000, 900_000
    ev = TemporalEventSet(
        rng.integers(0, n_v, n_e),
        rng.integers(0, n_v, n_e),
        rng.integers(0, 10_000, n_e),
        n_vertices=n_v,
    )
    big_view = TemporalAdjacency.from_events(ev).window_view(
        Window(0, 0, 10_001)
    )
    seconds, runs = {}, {}
    for name in ("numpy", "pcpm", "auto"):
        cfg = replace(BENCH_CONFIG, backend=name)
        runs[name], seconds[name] = _best_of(
            lambda c=cfg: pagerank_window(big_view, c, workspace=Workspace())
        )
    best_fixed = min(("numpy", "pcpm"), key=seconds.get)
    auto_over_best = seconds["auto"] / seconds[best_fixed]
    auto_within_bound = auto_over_best <= AUTO_SLACK
    resolved = resolve_backend(
        replace(BENCH_CONFIG, backend="auto"),
        big_view.n_active_edges, n_v, runs["numpy"].iterations,
    ).name

    # -- WorkStats attribution -------------------------------------------
    pcpm_work = runs["pcpm"].work
    stats_recorded = (
        pcpm_work.binning_seconds > 0.0 and pcpm_work.propagate_seconds > 0.0
    )

    payload = {
        "availability": {"numba": bool(numba_available())},
        "parity": {k: bool(v) for k, v in flags.items()},
        "propagate_large_v": {
            "n_vertices": LARGE_V,
            "n_edges": LARGE_M,
            "numpy_ms": round(periter_ms["numpy"], 3),
            "pcpm_ms": round(periter_ms["pcpm"], 3),
            "pcpm_binning_ms": round(bin_ms["pcpm"], 3),
            "pcpm_over_numpy": round(pcpm_over_numpy, 4),
        },
        "auto": {
            "n_vertices": n_v,
            "n_edges": int(big_view.n_active_edges),
            "iterations": int(runs["numpy"].iterations),
            "seconds_numpy": round(seconds["numpy"], 4),
            "seconds_pcpm": round(seconds["pcpm"], 4),
            "seconds_auto": round(seconds["auto"], 4),
            "best_fixed": best_fixed,
            "resolved": resolved,
            "auto_over_best": round(auto_over_best, 4),
            "auto_within_bound": bool(auto_within_bound),
        },
        "workstats": {
            "binning_seconds": round(pcpm_work.binning_seconds, 6),
            "propagate_seconds": round(pcpm_work.propagate_seconds, 6),
            "recorded": bool(stats_recorded),
        },
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "backends.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows_tbl = [
        [k, "bitwise" if ok else "DIVERGED"] for k, ok in flags.items()
    ]
    text = format_table(
        ["kernel", "numpy vs pcpm/numba/auto"], rows_tbl,
        title=(
            f"backend parity on {PROFILE} (window {view.window.index}, "
            f"{adj.nnz:,} streamed events, "
            f"cache budget {PARITY_BUDGET} B → "
            f"{-(-adj.n_vertices // (PARITY_BUDGET // 8))} partitions)"
        ),
    )
    text += (
        f"\n\nlarge-V propagate ({LARGE_V:,} vertices, {LARGE_M:,} edges):"
        f" numpy {periter_ms['numpy']:.2f} ms/it,"
        f" pcpm {periter_ms['pcpm']:.2f} ms/it"
        f" (ratio {pcpm_over_numpy:.2f}x,"
        f" binning {bin_ms['pcpm']:.2f} ms once)"
        f"\nnumba available: {numba_available()}"
        f"\nauto on {n_v:,}-vertex window: resolved={resolved},"
        f" {seconds['auto']:.3f}s vs best fixed"
        f" {best_fixed}={seconds[best_fixed]:.3f}s"
        f" ({auto_over_best:.3f}x, bound {AUTO_SLACK:.2f}x)"
        f"\nworkstats: binning={pcpm_work.binning_seconds * 1e3:.2f} ms,"
        f" propagate={pcpm_work.propagate_seconds * 1e3:.2f} ms"
    )
    emit("backends", text)

    # the acceptance claims
    assert all(flags.values()), flags
    assert auto_within_bound, (
        f"auto {auto_over_best:.3f}x over best fixed backend"
    )
    assert stats_recorded
