"""Out-of-core `.tcsr` construction and lazy postmortem: throughput + RSS.

The question this bench answers: **does the memory-mapped input path
actually bound resident memory while staying bitwise-correct?**  Three
measurements:

* **parity** (small scale, in-process) — the artifact's adjacency equals
  `TemporalAdjacency.from_events` array-for-array, and a lazy postmortem
  run from the mapped event set is bitwise-identical to the eager in-RAM
  run;
* **build** (subprocess) — `generate_tcsr` at ``REPRO_OOC_EVENTS`` events
  (default 1,000,000; the committed baseline ran at 10,000,000), peak
  ``ru_maxrss`` net of interpreter startup must stay under 50% of the
  artifact's array bytes plus a fixed allocator slack;
* **run** (subprocess) — a lazy serial postmortem over the whole artifact
  under the same RSS bound: only the pages windows touch (the event log
  plus one transient compact graph at a time) ever become resident.

Each RSS probe runs in its own child process (``python -m
benchmarks.bench_outofcore --child ...``) so `ru_maxrss` — a
process-lifetime high-water mark — measures that workload alone; a
`baseline` child measures interpreter + import cost, which is subtracted.

Wall-clock throughput (events/s) is printed but not asserted; the
guarded metrics in ``check_regression.py`` are the parity and RSS-bound
flags, which depend only on the code.

Run:  pytest benchmarks/bench_outofcore.py -s
Scale up:  REPRO_OOC_EVENTS=10000000 pytest benchmarks/bench_outofcore.py -s
"""

from __future__ import annotations

import json
import os
import resource
import subprocess
import sys
import time

import numpy as np

#: total events in the subprocess build/run probes; the committed
#: baseline (BENCH_outofcore.json) was generated at 10_000_000
N_EVENTS = int(os.environ.get("REPRO_OOC_EVENTS", "1000000"))

#: the probes scale this profile (20_000 base events) up to N_EVENTS
PROFILE = "askubuntu"

#: net peak RSS must stay under HALF the mapped array bytes, plus a fixed
#: allowance for allocator fragmentation and numpy scratch — the slack
#: dominates at smoke scale, the 50% term at baseline scale
RSS_FRACTION = 0.5
RSS_SLACK_BYTES = 96 * 1024 * 1024

#: chunk size for the build probe.  The builder's working set is
#: O(chunk_events x n_workers) -- each worker holds a handful of
#: chunk-sized temporaries (sort order, gathers) plus the dirty mapped
#: pages it is about to drop -- so the probe picks a chunk that keeps
#: 4 workers' transients well under the RSS bound while still being
#: large enough that chunking genuinely engages at smoke scale.
CHUNK_EVENTS = min(max(N_EVENTS // 16, 65_536), 1_000_000)

DELTA_DAYS = 180
SW_SECONDS = 30 * 86_400
MAX_WINDOWS = 48
N_MULTIWINDOWS = 8


def _scale() -> float:
    from repro.datasets import get_profile

    return N_EVENTS / get_profile(PROFILE).n_events


def _rss_bytes() -> int:
    # ru_maxrss is KiB on Linux
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _spec(events):
    from repro.events import WindowSpec

    spec = WindowSpec.covering_days(events, DELTA_DAYS, SW_SECONDS)
    if spec.n_windows > MAX_WINDOWS:
        spec = WindowSpec(spec.t0, spec.delta, spec.sw, MAX_WINDOWS)
    return spec


# ----------------------------------------------------------------------
# child probes (each runs in a fresh interpreter)
# ----------------------------------------------------------------------

def _child_baseline() -> dict:
    """Import cost + interpreter footprint, nothing else."""
    import repro.models  # noqa: F401  (the run probe's import set)

    return {"rss_bytes": _rss_bytes()}


def _child_build(path: str) -> dict:
    from repro.datasets import get_profile
    from repro.graph.io import TcsrFile

    t0 = time.perf_counter()
    get_profile(PROFILE).generate_tcsr(
        path, scale=_scale(), chunk_events=CHUNK_EVENTS
    )
    seconds = time.perf_counter() - t0
    with TcsrFile(path) as artifact:
        n_events = artifact.n_events
        array_bytes = artifact.stored_bytes()
    return {
        "rss_bytes": _rss_bytes(),
        "seconds": seconds,
        "n_events": n_events,
        "array_bytes": array_bytes,
        "chunk_events": CHUNK_EVENTS,
    }


def _child_run(path: str) -> dict:
    from repro.graph.io import open_events
    from repro.models import PostmortemDriver, PostmortemOptions
    from repro.pagerank import PagerankConfig

    events = open_events(path)
    spec = _spec(events)
    opts = PostmortemOptions(n_multiwindows=N_MULTIWINDOWS)
    cfg = PagerankConfig(tolerance=1e-6, max_iterations=60)
    t0 = time.perf_counter()
    run = PostmortemDriver(events, spec, cfg, opts).run(store_values=False)
    seconds = time.perf_counter() - t0
    return {
        "rss_bytes": _rss_bytes(),
        "seconds": seconds,
        "n_windows": spec.n_windows,
        "materialize": run.metadata["materialize"],
        "total_iterations": run.total_iterations,
    }


_CHILDREN = {
    "baseline": _child_baseline,
    "build": _child_build,
    "run": _child_run,
}


def _spawn(mode: str, *args: str) -> dict:
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    proc = subprocess.run(
        [sys.executable, "-m", "benchmarks.bench_outofcore",
         "--child", mode, *args],
        capture_output=True, text=True, env=env, check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"child {mode} failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.splitlines()[-1])


# ----------------------------------------------------------------------
# the bench
# ----------------------------------------------------------------------

def _parity_flags(tmp_dir: str) -> dict:
    """Small-scale, in-process: artifact vs in-RAM, lazy vs eager."""
    from repro.datasets import get_profile
    from repro.graph.io import open_adjacency, open_events, write_tcsr
    from repro.graph.temporal_csr import TemporalAdjacency
    from repro.models import PostmortemDriver, PostmortemOptions
    from repro.pagerank import PagerankConfig

    events = get_profile(PROFILE).generate()
    path = os.path.join(tmp_dir, "parity.tcsr")
    write_tcsr(events, path, chunk_events=4_096)

    ram = TemporalAdjacency.from_events(events)
    mapped_adj = open_adjacency(path)
    adjacency_match = all(
        np.array_equal(getattr(a, name), getattr(b, name))
        for a, b in ((mapped_adj.in_csr, ram.in_csr),
                     (mapped_adj.out_csr, ram.out_csr))
        for name in ("indptr", "col", "time", "group_start")
    )

    spec = _spec(events)
    cfg = PagerankConfig(tolerance=1e-10, max_iterations=200)
    opts = PostmortemOptions(n_multiwindows=N_MULTIWINDOWS)
    eager = PostmortemDriver(events, spec, cfg, opts).run()
    mapped = open_events(path)
    lazy = PostmortemDriver(mapped, spec, cfg, opts).run()
    postmortem_match = (
        lazy.metadata["materialize"] == "lazy"
        and eager.metadata["materialize"] == "eager"
        and all(
            np.array_equal(w0.values, w1.values)
            and w0.iterations == w1.iterations
            for w0, w1 in zip(eager.windows, lazy.windows)
        )
    )
    mapped.close()
    return {
        "adjacency_match": bool(adjacency_match),
        "postmortem_match_exact": bool(postmortem_match),
    }


def test_outofcore(tmp_path):
    from benchmarks._common import OUTPUT_DIR, emit
    from repro.reporting import format_table

    parity = _parity_flags(str(tmp_path))

    base = _spawn("baseline")
    art = str(tmp_path / "probe.tcsr")
    build = _spawn("build", art)
    run = _spawn("run", art)

    rss_bound = RSS_FRACTION * build["array_bytes"] + RSS_SLACK_BYTES
    build_net = build["rss_bytes"] - base["rss_bytes"]
    run_net = run["rss_bytes"] - base["rss_bytes"]

    payload = {
        "n_events": build["n_events"],
        "array_bytes": build["array_bytes"],
        "rss_bound_bytes": int(rss_bound),
        "baseline_rss_bytes": base["rss_bytes"],
        "parity": parity,
        "build": {
            "seconds": build["seconds"],
            "events_per_second": build["n_events"] / build["seconds"],
            "chunk_events": build["chunk_events"],
            "net_rss_bytes": build_net,
            "rss_within_bound": build_net < rss_bound,
        },
        "run": {
            "seconds": run["seconds"],
            "n_windows": run["n_windows"],
            "total_iterations": run["total_iterations"],
            "materialize": run["materialize"],
            "net_rss_bytes": run_net,
            "rss_within_bound": run_net < rss_bound,
        },
    }

    mb = 1024 * 1024
    rows = [
        ["build", f"{build['seconds']:.2f}",
         f"{payload['build']['events_per_second'] / 1e6:.2f}M ev/s",
         f"{build_net / mb:.0f} MiB"],
        ["run", f"{run['seconds']:.2f}",
         f"{run['n_windows']} windows ({run['materialize']})",
         f"{run_net / mb:.0f} MiB"],
    ]
    text = format_table(
        ["phase", "seconds", "throughput", "net peak RSS"],
        rows,
        title=(
            f"out-of-core at {build['n_events']:,} events "
            f"({build['array_bytes'] / mb:.0f} MiB mapped, "
            f"RSS bound {rss_bound / mb:.0f} MiB)"
        ),
    )
    print()
    print(emit("outofcore", text))

    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "outofcore.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert parity["adjacency_match"]
    assert parity["postmortem_match_exact"]
    assert payload["build"]["rss_within_bound"], (
        f"build RSS {build_net / mb:.0f} MiB over bound {rss_bound / mb:.0f}"
    )
    assert payload["run"]["rss_within_bound"], (
        f"run RSS {run_net / mb:.0f} MiB over bound {rss_bound / mb:.0f}"
    )


if __name__ == "__main__":
    if len(sys.argv) >= 3 and sys.argv[1] == "--child":
        mode, args = sys.argv[2], sys.argv[3:]
        print(json.dumps(_CHILDREN[mode](*args)))
    else:
        print("usage: python -m benchmarks.bench_outofcore --child "
              "<baseline|build|run> [args]", file=sys.stderr)
        sys.exit(2)
