"""Compare a fresh bench JSON against its committed baseline.

Used by the CI ``bench-smoke`` job: after a benchmark writes
``benchmarks/output/<name>.json``, this script diffs the
machine-independent metrics against the committed
``benchmarks/BENCH_<name>.json`` and exits 1 on a >2x regression.

Wall-clock numbers are deliberately ignored — CI runners are shared and
slow; the guarded metrics are serialization volumes and ratios, which
depend only on the code.

Usage:  python benchmarks/check_regression.py shared_memory
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

HERE = Path(__file__).parent

#: a fresh metric may grow to at most TOLERANCE x its baseline value
TOLERANCE = 2.0

#: per-bench guarded metrics: (json path, human label); every metric is
#: "smaller is better" and bounded by TOLERANCE x baseline
GUARDED = {
    "shared_memory": [
        (("dispatch", "payload_ratio"), "shared/pickled payload ratio"),
        (("dispatch", "shared_arena_bytes"), "shared dispatch bytes"),
    ],
    "scaling_workers": [
        (("offline", "shared_payload_bytes"), "offline shared dispatch bytes"),
        (("offline", "shared_arena_bytes"), "offline shared arena bytes"),
    ],
    # traversal/union fractions are pure code facts; the per-iteration
    # time ratios compare two back-to-back runs on the same machine, so
    # they are stable where absolute wall-clock is not
    "edge_compaction": [
        (("spmv", "traversal_ratio"), "compacted/masked traversed events"),
        (("spmv", "periter_ratio"), "compacted/masked per-iteration time (spmv)"),
        (("spmm", "union_fraction"), "packed union fraction of nnz (spmm)"),
        (("spmm", "periter_ratio"), "compacted/masked per-iteration time (spmm)"),
    ],
    # cluster p99 vs single-process p50 compares two back-to-back runs on
    # the same machine — a ratio, like the compaction per-iteration times
    "cluster_serving": [
        (("slo", "p99_over_single_p50"), "cluster top-k p99 / single p50"),
    ],
    # back-to-back same-machine ratios: postmortem k-core wall-clock over
    # the offline rebuild (peeling-dominated, so postmortem tracks rather
    # than beats it — the bound keeps engine overhead from silently
    # growing), and the program-engine path over the legacy kernel driver
    "extension_kcore": [
        (("pm_over_offline_worst",),
         "postmortem/offline k-core wall-clock (worst dataset)"),
    ],
    "program_engine": [
        (("kcore", "engine_over_kernel"),
         "engine/kernel-driver k-core wall-clock"),
        (("katz", "engine_over_kernel"),
         "engine/kernel-driver Katz wall-clock"),
    ],
    # back-to-back same-machine ratios: the NumPy partitioning overhead
    # and the auto policy's slack over the measured best fixed backend
    "backends": [
        (("propagate_large_v", "pcpm_over_numpy"),
         "pcpm/numpy per-iteration propagate time"),
        (("auto", "auto_over_best"),
         "auto/best-fixed full-kernel time"),
    ],
    # no guarded ratios: the out-of-core contract is the RSS-bound and
    # parity flags below (wall-clock and absolute RSS are machine facts)
    "outofcore": [],
}

#: per-bench boolean invariants that must hold in the fresh results
REQUIRED_FLAGS = {
    "shared_memory": [("thread_match_exact",)],
    "scaling_workers": [
        ("thread_match_exact",),
        ("process_match_exact",),
        ("shared_match_exact",),
    ],
    "edge_compaction": [
        ("spmv", "match_exact"),
        ("spmv", "speedup_ok"),
        ("weighted", "match_exact"),
        ("spmm", "match_exact"),
        ("spmm", "auto_within_bound"),
        ("pb", "match_close"),
        ("auto_within_bound",),
    ],
    "cluster_serving": [
        ("parity_all_ops",),
        ("overload_sheds",),
        ("no_shm_leak",),
        ("topk_p99_within_bound",),
    ],
    "extension_kcore": [
        ("values_match",),
        ("pm_beats_streaming",),
    ],
    "program_engine": [
        ("kcore", "match_exact"),
        ("katz", "match_close"),
    ],
    "backends": [
        ("parity", "spmv"),
        ("parity", "weighted"),
        ("parity", "spmm"),
        ("parity", "pb"),
        ("auto", "auto_within_bound"),
        ("workstats", "recorded"),
    ],
    "outofcore": [
        ("parity", "adjacency_match"),
        ("parity", "postmortem_match_exact"),
        ("build", "rss_within_bound"),
        ("run", "rss_within_bound"),
    ],
}


def _lookup(payload: dict, path: tuple):
    value = payload
    for key in path:
        value = value[key]
    return value


def check(name: str) -> int:
    baseline_path = HERE / f"BENCH_{name}.json"
    fresh_path = HERE / "output" / f"{name}.json"
    baseline = json.loads(baseline_path.read_text())
    fresh = json.loads(fresh_path.read_text())

    failures = []
    for path, label in GUARDED.get(name, []):
        base, now = _lookup(baseline, path), _lookup(fresh, path)
        bound = base * TOLERANCE
        status = "ok" if now <= bound else "REGRESSION"
        print(
            f"{label}: baseline={base:.6g} fresh={now:.6g} "
            f"bound={bound:.6g} [{status}]"
        )
        if now > bound:
            failures.append(label)
    for path in REQUIRED_FLAGS.get(name, []):
        if not _lookup(fresh, path):
            print(f"invariant {'.'.join(path)} is no longer true [REGRESSION]")
            failures.append(".".join(path))

    if failures:
        print(f"\n{len(failures)} regression(s) vs {baseline_path.name}")
        return 1
    print(f"\nno regressions vs {baseline_path.name}")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2 or sys.argv[1] not in GUARDED:
        known = ", ".join(sorted(GUARDED))
        print(f"usage: check_regression.py <bench>  (known: {known})")
        sys.exit(2)
    sys.exit(check(sys.argv[1]))
