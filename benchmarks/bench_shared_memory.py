"""Executor dispatch cost: pickled processes vs the shared-memory arena.

The question this bench answers: **what does it cost to hand a
multi-window graph to a worker?**  Four executors solve the same medium
synthetic profile:

* ``serial`` — no dispatch at all (the kernel-time floor);
* ``thread`` — shared address space, but GIL-bound kernels;
* ``process`` — true parallelism, but every task pickles its graph's
  ``indptr/col/time`` arrays into the worker;
* ``shared`` — graphs published once into a shared-memory arena, tasks
  carry only segment-name handles.

Wall-clock on a 1-core CI box is noise, so the *asserted* metrics are
machine-independent: the bytes a task submission serializes.  The shared
executor must ship ≤ 10% of the pickled executor's payload (in practice
it is ~1000x less — handles are a few hundred bytes) while matching the
thread executor's results bitwise.

Results are printed, persisted as text, and emitted as JSON
(``benchmarks/output/shared_memory.json``); the committed baseline lives
at ``benchmarks/BENCH_shared_memory.json`` and the CI bench-smoke job
fails on >2x regression of the ratio metrics.

Run:  pytest benchmarks/bench_shared_memory.py -s
"""

from __future__ import annotations

import json
import pickle
import time

from benchmarks._common import (
    BENCH_CONFIG,
    OUTPUT_DIR,
    emit,
    get_events,
    spec_for,
)
from repro.models import PostmortemDriver, PostmortemOptions
from repro.reporting import format_table

PROFILE = "stackoverflow"
DELTA_DAYS = 30
SW_SECONDS = 86_400
N_MULTIWINDOWS = 4
N_WORKERS = 2

#: acceptance bound — shared-arena dispatch payload relative to pickled
#: process dispatch (ISSUE: ≤ 10%; measured ~0.1%)
MAX_PAYLOAD_RATIO = 0.10


def _run(events, spec, executor):
    opts = PostmortemOptions(
        n_multiwindows=N_MULTIWINDOWS,
        kernel="spmm",
        executor=executor,
        n_threads=N_WORKERS,
    )
    driver = PostmortemDriver(events, spec, BENCH_CONFIG, opts)
    t0 = time.perf_counter()
    run = driver.run(store_values=True)
    return run, time.perf_counter() - t0


def _pickled_dispatch_bytes(driver_events, spec):
    """What executor='process' serializes per run: each task ships its
    whole multi-window graph (structure arrays included) to a worker."""
    from repro.graph.multiwindow import MultiWindowPartition

    part = MultiWindowPartition(driver_events, spec, N_MULTIWINDOWS)
    return sum(
        len(pickle.dumps(g, protocol=pickle.HIGHEST_PROTOCOL))
        for g in part.graphs
    )


def test_shared_memory_dispatch():
    events = get_events(PROFILE)
    spec = spec_for(events, DELTA_DAYS, SW_SECONDS, max_windows=48)

    runs, seconds = {}, {}
    for executor in ("serial", "thread", "process", "shared"):
        runs[executor], seconds[executor] = _run(events, spec, executor)

    # -- correctness: shared must match thread bitwise -------------------
    mismatched = []
    for wa, wb in zip(runs["thread"].windows, runs["shared"].windows):
        same = (
            wa.iterations == wb.iterations
            and wa.values is not None
            and wb.values is not None
            and (wa.values == wb.values).all()
        )
        if not same:
            mismatched.append(wa.window_index)
    thread_match_exact = not mismatched

    # -- dispatch cost ---------------------------------------------------
    arena_stats = runs["shared"].metadata["shared_arena"]
    shared_payload = int(arena_stats["payload_bytes"])
    pickled_payload = _pickled_dispatch_bytes(events, spec)
    payload_ratio = shared_payload / pickled_payload

    payload = {
        "profile": {
            "name": PROFILE,
            "events": len(events),
            "vertices": events.n_vertices,
            "windows": spec.n_windows,
            "multiwindows": N_MULTIWINDOWS,
            "workers": N_WORKERS,
        },
        "seconds": {ex: round(s, 4) for ex, s in seconds.items()},
        "dispatch": {
            "pickled_process_bytes": pickled_payload,
            "shared_arena_bytes": shared_payload,
            "payload_ratio": payload_ratio,
            "arena_bytes": int(arena_stats["arena_bytes"]),
            "publish_seconds": round(
                float(arena_stats["publish_seconds"]), 5
            ),
        },
        "thread_match_exact": thread_match_exact,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "shared_memory.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [
        [ex, f"{seconds[ex]:.3f}",
         "-" if ex in ("serial", "thread") else (
             f"{pickled_payload:,}" if ex == "process"
             else f"{shared_payload:,}")]
        for ex in ("serial", "thread", "process", "shared")
    ]
    text = format_table(
        ["executor", "wall (s)", "dispatch bytes"], rows,
        title=(
            f"executor dispatch on {PROFILE} "
            f"({len(events):,} events, {spec.n_windows} windows)"
        ),
    )
    text += (
        f"\n\nshared/pickled payload ratio: {payload_ratio:.5f} "
        f"(bound {MAX_PAYLOAD_RATIO}); arena "
        f"{payload['dispatch']['arena_bytes']:,} bytes published in "
        f"{payload['dispatch']['publish_seconds'] * 1e3:.2f} ms"
        f"\nshared matches thread bitwise: {thread_match_exact}"
    )
    emit("shared_memory", text)

    # the acceptance claims
    assert thread_match_exact, f"windows diverged: {mismatched}"
    assert payload_ratio <= MAX_PAYLOAD_RATIO
    assert shared_payload < arena_stats["arena_bytes"]
