"""Figure 7 — partitioner and granularity sweep, 256 windows.

wiki-talk, 90-day windows, 256 windows (the paper's configuration), SpMM
vector length 16.  Expected shapes (paper Section 6.3.2):

* window-level parallelization collapses once granularity makes the chunk
  count fall below the worker count ("performance drop after 128");
* nested and PR-level lose ground at very large granularities;
* the static partitioner is overall worse; auto and simple are comparable;
* SpMM curves dominate their SpMV counterparts.

Run:  pytest benchmarks/bench_fig7_partitioners.py --benchmark-only -s
"""

from __future__ import annotations

from benchmarks._common import emit
from benchmarks._sweep import GRANULARITIES, run_sweep


def test_fig7_sweep(benchmark):
    text, curves, spec = benchmark.pedantic(
        run_sweep, args=("Figure 7", 90.0, 256), rounds=1, iterations=1
    )
    emit("fig7_partitioners", text)

    auto = curves["auto"]
    g = GRANULARITIES

    # SpMM >= SpMV at the recommended small granularities, for every level
    for level in ("Nested", "PR Level", "Window Level"):
        for i in range(4):  # g in {1, 2, 4, 8}
            assert (
                auto[f"{level}(SpMM)"][i] >= auto[f"{level}(SpMV)"][i] * 0.95
            ), (level, g[i])

    # window-level collapses at huge granularity (chunks < workers)
    wl = auto["Window Level(SpMM)"]
    assert wl[g.index(2048)] < wl[g.index(1)] * 0.5

    # postmortem crushes streaming in its best configuration
    best = max(max(s) for s in auto.values())
    assert best > 20.0

    # static partitioner's best is no better than auto's best
    best_static = max(max(s) for s in curves["static"].values())
    assert best_static <= best * 1.1
