"""Ablation — SpMM vector length vs partial initialization.

Section 4.4: "Choosing a high number of vector in SpMM will reduce benefit
of the partial initialization because all the initial Pagerank vectors
will do full initialization" (the region heads of the first batch).  This
ablation sweeps the vector length and reports:

* the number of cold-started windows (region heads),
* total iterations executed (partial-init quality),
* measured serial time,
* the simulated 48-core makespan (structure-sharing benefit).

Expected tradeoff: larger k shares the structure traversal across more
windows (simulated makespan falls) but cold-starts more windows (iteration
count rises) — the reason the paper settles on k = 8 or 16.

Run:  pytest benchmarks/bench_ablation_vector_length.py --benchmark-only -s
"""

from __future__ import annotations

from benchmarks._common import (
    BENCH_CONFIG,
    PAPER_CORES,
    cost_model,
    emit,
    get_events,
    postmortem_stats,
    spec_for,
)
from repro.models import PostmortemDriver, PostmortemOptions
from repro.parallel import AUTO, MachineSpec
from repro.parallel.levels import estimate_makespan
from repro.reporting import format_table
from repro.utils.timer import Timer

VECTOR_LENGTHS = [1, 2, 4, 8, 16, 32]
Y = 6


def run_ablation():
    events = get_events("wiki-talk")
    spec = spec_for(events, 90.0, 43_200)
    stats = postmortem_stats("wiki-talk", spec, Y)
    model = cost_model()
    machine = MachineSpec(PAPER_CORES)

    rows = []
    sim_times = []
    iter_counts = []
    for k in VECTOR_LENGTHS:
        kernel = "spmv" if k == 1 else "spmm"
        opts = PostmortemOptions(
            n_multiwindows=Y, kernel=kernel, vector_length=k
        )
        driver = PostmortemDriver(events, spec, BENCH_CONFIG, opts)
        with Timer() as t:
            run = driver.run(store_values=False)
        cold = sum(
            1
            for task in run.metadata["task_log"]
            for w, used in [(task.windows, task.used_partial_init)]
            if not used
            for _ in w
        )
        t_sim = estimate_makespan(
            stats, machine, model, "nested", AUTO, 4, kernel, k
        )
        sim_times.append(t_sim)
        iter_counts.append(run.total_iterations)
        rows.append(
            [
                k,
                cold,
                run.total_iterations,
                round(t.elapsed, 3),
                round(t_sim * 1_000, 2),
            ]
        )
    text = format_table(
        [
            "vector length",
            "cold-start windows",
            "total iterations",
            "serial time (s)",
            "simulated 48-core (ms)",
        ],
        rows,
        title=(
            "Ablation: SpMM vector length vs partial initialization "
            f"(wiki-talk, {spec.n_windows} windows, Y={Y})"
        ),
    )
    return text, sim_times, iter_counts


def test_ablation_vector_length(benchmark):
    text, sim_times, iters = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    emit("ablation_vector_length", text)

    k = VECTOR_LENGTHS
    # structure sharing: simulated makespan improves from k=1 to k=8
    assert sim_times[k.index(8)] < sim_times[k.index(1)]
    # partial-init erosion: more total iterations at k=32 than k=2
    assert iters[k.index(32)] >= iters[k.index(2)]
