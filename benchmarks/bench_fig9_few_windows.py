"""Figure 9 — the same sweep with only 6 windows.

With 6 windows and 48 simulated cores, window-level parallelization is
starved ("the number of windows is only 6 ... which stifles the
performance of window-level parallelism") while PR-level and nested keep
scaling — the paper's case for application-level parallelism on few-window
instances.

Substitution note: the paper uses 10-day windows here; at our ~1/700 event
scale a 10-day window holds almost no events, so this sweep keeps the
6-window count (the variable that drives the figure's effect) with 90-day
windows to preserve non-degenerate per-window work.

Run:  pytest benchmarks/bench_fig9_few_windows.py --benchmark-only -s
"""

from __future__ import annotations

from benchmarks._common import emit
from benchmarks._sweep import GRANULARITIES, run_sweep


def test_fig9_sweep(benchmark):
    text, curves, spec = benchmark.pedantic(
        run_sweep,
        args=("Figure 9", 90.0, 6),
        kwargs={"n_multiwindows": 6},
        rounds=1,
        iterations=1,
    )
    emit("fig9_few_windows", text)
    assert spec.n_windows == 6

    auto = curves["auto"]
    # window-level is capped at 6-way parallelism: nested/PR-level must
    # beat it at small granularities
    for i in range(3):
        assert auto["Nested(SpMM)"][i] > auto["Window Level(SpMM)"][i]
    # window-level flat-lines once every chunk holds >= all 6 windows
    wl = auto["Window Level(SpMV)"]
    assert abs(wl[GRANULARITIES.index(8)] - wl[-1]) < 1e-6
