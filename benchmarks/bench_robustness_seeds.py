"""Robustness — headline speedups across independent dataset draws.

The synthetic-dataset substitution (DESIGN.md §2) raises an obvious
question: do the conclusions depend on the particular random draw?  This
study regenerates two profiles with three independent seeds each, measures
the serial postmortem-vs-streaming speedup per draw, and reports
mean ± spread — the reproduction's error bars.

Run:  pytest benchmarks/bench_robustness_seeds.py --benchmark-only -s
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import BENCH_CONFIG, BENCH_SCALE, emit
from repro.analysis import compare_models
from repro.datasets import get_profile
from repro.events import WindowSpec
from repro.models import PostmortemOptions
from repro.reporting import format_table

CONFIGS = [
    ("youtube-growth", 60.0, 86_400 * 2),
    ("wiki-talk", 90.0, 86_400 * 12),
]
SEEDS = [0, 1, 2]
OPTIONS = PostmortemOptions(n_multiwindows=6, kernel="spmm",
                            vector_length=8)


def run_robustness():
    rows = []
    spreads = []
    for name, ws, sw in CONFIGS:
        profile = get_profile(name)
        speedups = []
        for seed in SEEDS:
            events = profile.generate(seed_offset=seed, scale=BENCH_SCALE)
            spec = WindowSpec.covering_days(events, ws, sw)
            if spec.n_windows > 150:
                spec = WindowSpec(spec.t0, spec.delta, spec.sw, 150)
            t = compare_models(events, spec, BENCH_CONFIG, OPTIONS)
            speedups.append(t.postmortem_vs_streaming)
        arr = np.array(speedups)
        rel_spread = float((arr.max() - arr.min()) / arr.mean())
        spreads.append(rel_spread)
        rows.append(
            [
                name,
                f"{ws:.0f}d",
                ", ".join(f"{s:.2f}" for s in speedups),
                round(float(arr.mean()), 2),
                f"{rel_spread:.0%}",
            ]
        )
    text = format_table(
        [
            "dataset",
            "window",
            "pm/stream per seed",
            "mean",
            "rel spread",
        ],
        rows,
        title=(
            "Robustness: serial postmortem/streaming speedup across "
            "3 independent dataset draws"
        ),
    )
    return text, spreads, rows


def test_robustness_seeds(benchmark):
    text, spreads, rows = benchmark.pedantic(
        run_robustness, rounds=1, iterations=1
    )
    emit("robustness_seeds", text)
    # the qualitative conclusion (postmortem wins) holds on every draw
    for row in rows:
        for s in row[2].split(", "):
            assert float(s) > 1.0, row
    # and the magnitudes are stable (spread under 60% of the mean)
    assert all(s < 0.6 for s in spreads)
