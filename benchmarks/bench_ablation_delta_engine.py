"""Ablation — warm-restart vs frontier-delta streaming engines (eq. 3).

The paper's streaming baseline leverages incremental updates (Riedy's
eq. 3).  Two faithful implementations are compared as the streaming
engine, across sliding offsets (smaller offset = smaller per-window change
= more advantage for the frontier):

* ``warm`` — warm-started full power iteration (every iteration touches
  every edge);
* ``delta`` — frontier-based residual propagation (touches only edges
  reachable from vertices whose residual is pending).

Reported: measured wall-clock and *edge traversals* per engine.  Expected
shape: the delta engine's traversal count drops as the sliding offset
shrinks, while the warm engine's stays roughly flat — the structural
advantage streaming systems rely on (and the advantage the postmortem
model matches with partial initialization while adding parallelism).

Run:  pytest benchmarks/bench_ablation_delta_engine.py --benchmark-only -s
"""

from __future__ import annotations

from benchmarks._common import BENCH_CONFIG, emit, get_events
from repro.events import WindowSpec
from repro.streaming import StreamingDriver
from repro.reporting import format_table
from repro.utils.timer import Timer

# sliding offsets from large (little overlap) to small (heavy overlap)
SW_DAYS = [16, 8, 4, 2]
DELTA_DAYS = 90.0
N_WINDOWS = 60


def run_ablation():
    events = get_events("wiki-talk")
    rows = []
    ratios = []
    for sw_days in SW_DAYS:
        spec = WindowSpec.covering_days(events, DELTA_DAYS,
                                        sw_days * 86_400)
        spec = WindowSpec(spec.t0, spec.delta, spec.sw,
                          min(spec.n_windows, N_WINDOWS))
        results = {}
        for engine in ("warm", "delta"):
            driver = StreamingDriver(
                events, spec, BENCH_CONFIG, engine=engine
            )
            with Timer() as t:
                run = driver.run(store_values=False)
            results[engine] = (t.elapsed, run.work.edge_traversals)
        ratio = results["warm"][1] / max(results["delta"][1], 1)
        ratios.append(ratio)
        rows.append(
            [
                f"{sw_days}d",
                spec.n_windows,
                f"{results['warm'][1]:,}",
                f"{results['delta'][1]:,}",
                round(ratio, 2),
                round(results["warm"][0], 3),
                round(results["delta"][0], 3),
            ]
        )
    text = format_table(
        [
            "offset",
            "#win",
            "edges touched (warm)",
            "edges touched (delta)",
            "ratio",
            "t warm (s)",
            "t delta (s)",
        ],
        rows,
        title=(
            "Ablation: warm-restart vs frontier-delta streaming engine "
            f"(wiki-talk, {DELTA_DAYS:.0f}-day windows)"
        ),
    )
    return text, ratios


def test_ablation_delta_engine(benchmark):
    text, ratios = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit("ablation_delta_engine", text)

    # the frontier's advantage grows as the per-slide change shrinks
    assert ratios[-1] >= ratios[0] * 0.9
    assert max(ratios) > 1.0
