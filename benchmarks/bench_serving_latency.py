"""Serving-path performance: the rank store's first perf baseline.

Three claims, asserted on a ~100k-vertex, 200-window synthetic store:

* cached ``top_k`` answers in well under a millisecond at p50 (the LRU
  holds the materialized leaderboard — a hit never touches the matrix);
* batched evaluation beats one-at-a-time evaluation when the working set
  exceeds the slice cache, because grouping by window turns N decodes
  into one per distinct window;
* the streaming writer's peak memory is independent of window count
  (rows go straight to their file offset).

Results are printed, persisted as text, and emitted as JSON
(``benchmarks/output/serving_latency.json``) for trend tracking.

Run:  pytest benchmarks/bench_serving_latency.py -s
"""

from __future__ import annotations

import json
import time
import tracemalloc
from statistics import median

import numpy as np
import pytest

from benchmarks._common import OUTPUT_DIR, emit
from repro.reporting import format_table
from repro.service import QueryEngine, RankStoreWriter

N_VERTICES = 100_000
N_WINDOWS = 200
SAMPLE_WINDOWS = 60
N_QUERIES = 1_500


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("serving") / "bench.rankstore"
    rng = np.random.default_rng(42)
    with RankStoreWriter(path, n_windows=N_WINDOWS,
                         n_vertices=N_VERTICES) as w:
        for i in range(N_WINDOWS):
            row = rng.random(N_VERTICES, dtype=np.float32)
            w.write_window(i, row / row.sum())
    return path


def _percentiles(samples):
    ordered = sorted(samples)
    return {
        "p50_ms": median(ordered) * 1e3,
        "p95_ms": ordered[int(0.95 * (len(ordered) - 1))] * 1e3,
    }


def test_serving_latency(store_path):
    rng = np.random.default_rng(7)
    windows = rng.choice(N_WINDOWS, size=SAMPLE_WINDOWS, replace=False)

    engine = QueryEngine(store_path, slice_cache_size=N_WINDOWS)
    cold, cached = [], []
    for w in windows:
        t0 = time.perf_counter()
        first = engine.top_k(int(w), 10)
        cold.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        again = engine.top_k(int(w), 10)
        cached.append(time.perf_counter() - t0)
        assert first == again

    cold_stats, cached_stats = _percentiles(cold), _percentiles(cached)

    # -- batched vs unbatched throughput under cache pressure -----------
    # top-k queries arriving in random window order, with caches far
    # smaller than the working set: one-at-a-time evaluation recomputes
    # the leaderboard per query, batching groups queries per window
    queries = [
        {"op": "top_k", "window": int(rng.integers(N_WINDOWS)), "k": 10}
        for _ in range(N_QUERIES)
    ]

    def fresh_engine():
        return QueryEngine(store_path, slice_cache_size=8,
                           topk_cache_size=8)

    small = fresh_engine()
    t0 = time.perf_counter()
    for q in queries:
        small.top_k(q["window"], q["k"])
    unbatched_s = time.perf_counter() - t0
    small.close()

    small = fresh_engine()
    t0 = time.perf_counter()
    results = small.batch(queries)
    batched_s = time.perf_counter() - t0
    assert all(r["ok"] for r in results)
    small.close()

    # -- streaming writer peak memory vs window count -------------------
    def writer_peak(n_windows: int) -> int:
        path = store_path.parent / f"mem{n_windows}.rankstore"
        row = np.random.default_rng(0).random(N_VERTICES)
        writer = RankStoreWriter(path, n_windows=n_windows,
                                 n_vertices=N_VERTICES)
        tracemalloc.start()
        for i in range(n_windows):
            writer.write_window(i, row)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        writer.close()
        return peak

    peak_few, peak_many = writer_peak(25), writer_peak(200)

    payload = {
        "store": {"windows": N_WINDOWS, "vertices": N_VERTICES},
        "top_k_cold": cold_stats,
        "top_k_cached": cached_stats,
        "throughput": {
            "queries": N_QUERIES,
            "unbatched_qps": N_QUERIES / unbatched_s,
            "batched_qps": N_QUERIES / batched_s,
            "speedup": unbatched_s / batched_s,
        },
        "writer_peak_bytes": {"windows_25": peak_few,
                              "windows_200": peak_many},
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "serving_latency.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [
        ["top-k cold", f"{cold_stats['p50_ms']:.3f}",
         f"{cold_stats['p95_ms']:.3f}"],
        ["top-k cached", f"{cached_stats['p50_ms']:.3f}",
         f"{cached_stats['p95_ms']:.3f}"],
    ]
    text = format_table(
        ["query", "p50 (ms)", "p95 (ms)"], rows,
        title=(
            f"serving latency on {N_WINDOWS} windows x "
            f"{N_VERTICES:,} vertices"
        ),
    )
    text += (
        f"\n\nthroughput: unbatched "
        f"{payload['throughput']['unbatched_qps']:,.0f} q/s, batched "
        f"{payload['throughput']['batched_qps']:,.0f} q/s "
        f"({payload['throughput']['speedup']:.1f}x)"
        f"\nwriter peak memory: {peak_few / 1e6:.1f} MB @ 25 windows, "
        f"{peak_many / 1e6:.1f} MB @ 200 windows"
    )
    emit("serving_latency", text)

    # the acceptance claims
    assert cached_stats["p50_ms"] < 1.0
    assert payload["throughput"]["batched_qps"] > \
        payload["throughput"]["unbatched_qps"]
    # writer memory does not scale with window count (8x the windows,
    # far less than 8x the peak)
    assert peak_many < peak_few * 1.5

    stats = engine.stats()
    assert stats["topk_cache"]["hits"] == SAMPLE_WINDOWS
    engine.close()
