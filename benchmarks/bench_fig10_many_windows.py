"""Figure 10 — the same sweep with 1024 windows (90-day windows).

With many balanced windows, window-level parallelization performs well
("good performance for window-level parallelization because of large
number of windows") and keeps up with nested until granularity starves it.

Run:  pytest benchmarks/bench_fig10_many_windows.py --benchmark-only -s
"""

from __future__ import annotations

from benchmarks._common import emit
from benchmarks._sweep import GRANULARITIES, run_sweep


def test_fig10_sweep(benchmark):
    text, curves, spec = benchmark.pedantic(
        run_sweep,
        args=("Figure 10", 90.0, 1024),
        kwargs={"n_multiwindows": 6},
        rounds=1,
        iterations=1,
    )
    emit("fig10_many_windows", text)
    assert spec.n_windows == 1024

    auto = curves["auto"]
    g = GRANULARITIES
    # with 1024 windows, window-level at small granularity is competitive
    # with nested (within 2x), unlike the 6-window case
    wl = auto["Window Level(SpMM)"][g.index(4)]
    nested = auto["Nested(SpMM)"][g.index(4)]
    assert wl > nested * 0.5
    # and window-level still collapses when chunks < workers
    assert auto["Window Level(SpMM)"][g.index(1024)] < wl * 0.6
