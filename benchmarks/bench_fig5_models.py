"""Figure 5 — Offline vs Streaming vs Postmortem wall-clock.

The paper's subfigures: (a) Enron 2/4-year windows, (b) YouTube 60/90-day,
(c) Epinions 60/90-day, (d) wiki-talk 10/15/90/180-day.  Postmortem here is
the paper's "bare-bone" configuration: partial initialization, 6
multi-window graphs, serial application-level execution — measured real
wall-clock on this machine, same solver tolerance for all three models.

Expected shape (paper): streaming beats offline on Enron/YouTube but loses
on Epinions/wiki-talk; postmortem beats both everywhere (and by more than
3x on YouTube, ~40x on Epinions in the paper's C++ runs).

Run:  pytest benchmarks/bench_fig5_models.py --benchmark-only -s
"""

from __future__ import annotations

from benchmarks._common import BENCH_CONFIG, emit, get_events, spec_for
from repro.analysis import compare_models
from repro.models import PostmortemOptions
from repro.reporting import format_table

# (dataset, window sizes in days, paper sliding offset seconds)
SUBFIGURES = [
    ("ia-enron-email", [730.0, 1460.0], 172_800),
    ("youtube-growth", [60.0, 90.0], 86_400),
    ("epinions-user-ratings", [60.0, 90.0], 86_400),
    ("wiki-talk", [10.0, 15.0, 90.0, 180.0], 259_200),
]

OPTIONS = PostmortemOptions(n_multiwindows=6, kernel="spmv",
                            partial_init=True)


def run_fig5():
    rows = []
    timings = {}
    for name, window_sizes, sw in SUBFIGURES:
        events = get_events(name)
        for ws in window_sizes:
            spec = spec_for(events, ws, sw)
            t = compare_models(events, spec, BENCH_CONFIG, OPTIONS)
            timings[(name, ws)] = t
            rows.append(
                [
                    name,
                    f"{ws:.0f}d",
                    f"{spec.sw:,}s",
                    spec.n_windows,
                    round(t.offline_seconds, 3),
                    round(t.streaming_seconds, 3),
                    round(t.postmortem_seconds, 3),
                    round(t.postmortem_vs_streaming, 1),
                    round(t.postmortem_vs_offline, 1),
                ]
            )
    text = format_table(
        [
            "dataset",
            "window",
            "offset",
            "#win",
            "offline(s)",
            "streaming(s)",
            "postmortem(s)",
            "pm/stream",
            "pm/offline",
        ],
        rows,
        title=(
            "Figure 5: Offline vs Streaming vs Postmortem "
            "(measured, single core, serial postmortem)"
        ),
    )
    return text, timings


def test_fig5_models(benchmark):
    text, timings = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    emit("fig5_models", text)

    # the headline shape: postmortem beats streaming on the large-window
    # configurations and on almost all of the small ones (the paper's own
    # Figure 5d shows postmortem losing ground on the smallest wiki-talk
    # windows, where the 6-multi-window structure overhead dominates)
    for (name, ws), t in timings.items():
        if ws >= 60:
            assert t.postmortem_vs_streaming > 1.0, (name, ws)
    wins = sum(t.postmortem_vs_streaming > 1.0 for t in timings.values())
    assert wins >= len(timings) - 1
    # and beats offline on most large-window configurations
    big = [t for (n, ws), t in timings.items() if ws >= 60]
    assert sum(t.postmortem_vs_offline > 1.0 for t in big) >= len(big) // 2
