"""Shared infrastructure for the benchmark harness.

Every ``bench_*.py`` regenerates one table or figure of the paper.  The
instances are the scaled synthetic profiles (DESIGN.md §2 documents the
substitution); where a figure's window count matters (Figures 7–10 fix 6,
256 and 1024 windows) the sliding offset is chosen to hit the paper's
window count on the scaled time span, and the effective parameters are
printed with the output.

Rendered outputs are printed *and* written to ``benchmarks/output/`` so
EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path

from repro.datasets import DatasetRegistry
from repro.events import WindowSpec
from repro.pagerank import PagerankConfig
from repro.parallel import calibrate_cost_model, collect_window_stats
from repro.streaming import StreamingDriver
from repro.utils.timer import Timer

OUTPUT_DIR = Path(__file__).parent / "output"

#: default down-scale of the synthetic instances used by the harness;
#: raise REPRO_BENCH_SCALE for a heavier, more faithful run.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))

#: cap on windows per configuration so streaming baselines finish quickly
MAX_WINDOWS = int(os.environ.get("REPRO_BENCH_MAX_WINDOWS", "240"))

#: the paper's machine: 2 x 24-core Xeon
PAPER_CORES = 48

REGISTRY = DatasetRegistry()

BENCH_CONFIG = PagerankConfig(tolerance=1e-8, max_iterations=100)


def get_events(name: str, scale: float = None):
    """The scaled synthetic instance for a dataset profile (memoized)."""
    return REGISTRY.get(name, scale=scale if scale is not None else BENCH_SCALE)


def spec_for(events, delta_days: float, sw_seconds: int,
             max_windows: int = None) -> WindowSpec:
    """The paper's (delta, sw) on the scaled instance; if that yields more
    than ``max_windows`` windows, the sliding offset is scaled up by an
    integer factor (recorded via ``spec.sw``) to keep the full span covered
    with a bounded window count."""
    cap = max_windows or MAX_WINDOWS
    spec = WindowSpec.covering_days(events, delta_days, sw_seconds)
    if spec.n_windows > cap:
        factor = -(-spec.n_windows // cap)
        spec = WindowSpec.covering_days(events, delta_days,
                                        sw_seconds * factor)
    return spec


def spec_with_n_windows(events, delta_days: float, n_windows: int) -> WindowSpec:
    """A spec with (approximately) a fixed window count over the full span
    — used by Figures 7-10, whose x-axes fix the number of windows."""
    delta = int(delta_days * 86_400)
    span = max(events.span - delta, 1)
    sw = max(1, span // max(n_windows - 1, 1))
    return WindowSpec(t0=events.t_min, delta=delta, sw=sw,
                      n_windows=n_windows)


@functools.lru_cache(maxsize=1)
def cost_model():
    """The machine-calibrated cost model (calibrated once per session)."""
    return calibrate_cost_model()


_STREAMING_CACHE = {}


def streaming_seconds(name: str, spec: WindowSpec, scale: float = None) -> float:
    """Measured wall-clock of the streaming baseline (memoized per
    configuration)."""
    key = (name, scale, spec.t0, spec.delta, spec.sw, spec.n_windows)
    if key not in _STREAMING_CACHE:
        events = get_events(name, scale)
        with Timer() as t:
            StreamingDriver(events, spec, BENCH_CONFIG).run(store_values=False)
        _STREAMING_CACHE[key] = t.elapsed
    return _STREAMING_CACHE[key]


_STATS_CACHE = {}


def postmortem_stats(name: str, spec: WindowSpec, n_multiwindows: int = 6,
                     scale: float = None):
    """Measured per-window statistics for the simulator (memoized)."""
    key = (name, scale, spec.t0, spec.delta, spec.sw, spec.n_windows,
           n_multiwindows)
    if key not in _STATS_CACHE:
        events = get_events(name, scale)
        _STATS_CACHE[key] = collect_window_stats(
            events, spec, BENCH_CONFIG, n_multiwindows
        )
    return _STATS_CACHE[key]


def emit(name: str, text: str) -> str:
    """Print a rendered table/figure and persist it under
    benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
    return text
