"""Extension — the three execution models on a *different* kernel (k-core).

The paper's Section 3.1 claims the sliding-window methodology generalizes
beyond PageRank ("other kernels like ... k-core").  This bench runs the
max-core (degeneracy) analysis per window under offline, streaming and
postmortem execution on two datasets and checks the representational
advantages carry over: the postmortem model avoids both the per-window
rebuild (offline) and the structure-maintenance + snapshot costs
(streaming).

Results are printed, persisted as text, and emitted as JSON
(``benchmarks/output/extension_kcore.json``); the committed baseline is
``benchmarks/BENCH_extension_kcore.json`` and the CI ``bench-smoke`` job
gates the cross-model parity flag and the postmortem-vs-offline ratio
through ``check_regression.py``.

Run:  pytest benchmarks/bench_extension_kcore.py --benchmark-only -s
"""

from __future__ import annotations

import json

from benchmarks._common import OUTPUT_DIR, emit, get_events, spec_for
from repro.kernels import max_core
from repro.models.kernel_models import (
    offline_kernel_run,
    postmortem_kernel_run,
    streaming_kernel_run,
)
from repro.reporting import format_table

CONFIGS = [
    ("wiki-talk", 90.0, 259_200),
    ("youtube-growth", 60.0, 86_400),
]


def graph_max_core(graph, active):
    """Degeneracy from a materialized (graph, active) pair."""
    import numpy as np

    from repro.graph.csr import build_csr_from_edges

    src, dst = graph.edges()
    keep = src != dst
    und = build_csr_from_edges(
        np.concatenate([src[keep], dst[keep]]),
        np.concatenate([dst[keep], src[keep]]),
        graph.n_vertices,
        dedup=True,
    )
    deg = und.out_degrees().astype(np.int64)
    alive = deg > 0
    k = 0
    while alive.any():
        k = max(k, int(deg[alive].min()))
        while True:
            shell = alive & (deg <= k)
            if not shell.any():
                break
            alive[shell] = False
            idx = np.flatnonzero(shell)
            starts, ends = und.indptr[idx], und.indptr[idx + 1]
            lens = ends - starts
            if lens.sum():
                offsets = np.repeat(
                    starts - np.concatenate([[0], np.cumsum(lens)[:-1]]),
                    lens,
                )
                nbrs = und.col[np.arange(int(lens.sum())) + offsets]
                dec = np.bincount(
                    nbrs[alive[nbrs]], minlength=graph.n_vertices
                )
                deg -= dec
    return k


def run_extension():
    rows = []
    stream_ratios = []
    datasets = {}
    values_match = True
    for name, ws, sw in CONFIGS:
        events = get_events(name)
        spec = spec_for(events, ws, sw)
        off = offline_kernel_run(events, spec, graph_max_core)
        stream = streaming_kernel_run(events, spec, graph_max_core)
        pm = postmortem_kernel_run(
            events, spec, graph_max_core, 6, view_kernel=max_core
        )
        match = off.values == stream.values == pm.values
        values_match = values_match and match
        stream_ratios.append(stream.total_time / pm.total_time)
        datasets[name] = {
            "n_windows": spec.n_windows,
            "max_degeneracy": int(max(off.values)),
            "offline_s": round(off.total_time, 4),
            "streaming_s": round(stream.total_time, 4),
            "postmortem_s": round(pm.total_time, 4),
            "pm_over_offline": round(pm.total_time / off.total_time, 4),
            "stream_over_pm": round(stream.total_time / pm.total_time, 4),
            "values_match": bool(match),
        }
        rows.append(
            [
                name,
                spec.n_windows,
                max(off.values),
                round(off.total_time, 3),
                round(stream.total_time, 3),
                round(pm.total_time, 3),
                round(stream.total_time / pm.total_time, 2),
            ]
        )
    # the headline representational claim for a non-PageRank kernel:
    # postmortem avoids the streaming model's structure-maintenance and
    # snapshot costs (the boolean below), and stays within a bounded
    # factor of the embarrassingly-cheap offline rebuild (the guarded
    # ratio — at this peeling-dominated scale offline's per-window build
    # is not the bottleneck, so postmortem tracks rather than beats it).
    # both quotients are back-to-back same-machine, so they are stable
    # where absolute wall-clock is not
    pm_over_offline_worst = max(
        d["pm_over_offline"] for d in datasets.values()
    )
    payload = {
        "datasets": datasets,
        "values_match": bool(values_match),
        "pm_beats_streaming": bool(all(r > 1.0 for r in stream_ratios)),
        "pm_over_offline_worst": pm_over_offline_worst,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "extension_kcore.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    text = format_table(
        [
            "dataset",
            "#win",
            "max degeneracy",
            "offline(s)",
            "streaming(s)",
            "postmortem(s)",
            "pm/stream",
        ],
        rows,
        title=(
            "Extension: k-core degeneracy per window under the three "
            "execution models (identical results asserted)"
        ),
    )
    return text, stream_ratios, payload


def test_extension_kcore(benchmark):
    text, stream_ratios, payload = benchmark.pedantic(
        run_extension, rounds=1, iterations=1
    )
    emit("extension_kcore", text)
    # the postmortem representation advantage carries over to k-core
    assert payload["values_match"]
    assert payload["pm_beats_streaming"]
