"""Extension — the three execution models on a *different* kernel (k-core).

The paper's Section 3.1 claims the sliding-window methodology generalizes
beyond PageRank ("other kernels like ... k-core").  This bench runs the
max-core (degeneracy) analysis per window under offline, streaming and
postmortem execution on two datasets and checks the representational
advantages carry over: the postmortem model avoids both the per-window
rebuild (offline) and the structure-maintenance + snapshot costs
(streaming).

Run:  pytest benchmarks/bench_extension_kcore.py --benchmark-only -s
"""

from __future__ import annotations

from benchmarks._common import emit, get_events, spec_for
from repro.kernels import max_core
from repro.models.kernel_models import (
    offline_kernel_run,
    postmortem_kernel_run,
    streaming_kernel_run,
)
from repro.reporting import format_table

CONFIGS = [
    ("wiki-talk", 90.0, 259_200),
    ("youtube-growth", 60.0, 86_400),
]


def graph_max_core(graph, active):
    """Degeneracy from a materialized (graph, active) pair."""
    import numpy as np

    from repro.graph.csr import build_csr_from_edges

    src, dst = graph.edges()
    keep = src != dst
    und = build_csr_from_edges(
        np.concatenate([src[keep], dst[keep]]),
        np.concatenate([dst[keep], src[keep]]),
        graph.n_vertices,
        dedup=True,
    )
    deg = und.out_degrees().astype(np.int64)
    alive = deg > 0
    k = 0
    while alive.any():
        k = max(k, int(deg[alive].min()))
        while True:
            shell = alive & (deg <= k)
            if not shell.any():
                break
            alive[shell] = False
            idx = np.flatnonzero(shell)
            starts, ends = und.indptr[idx], und.indptr[idx + 1]
            lens = ends - starts
            if lens.sum():
                offsets = np.repeat(
                    starts - np.concatenate([[0], np.cumsum(lens)[:-1]]),
                    lens,
                )
                nbrs = und.col[np.arange(int(lens.sum())) + offsets]
                dec = np.bincount(
                    nbrs[alive[nbrs]], minlength=graph.n_vertices
                )
                deg -= dec
    return k


def run_extension():
    rows = []
    ratios = []
    for name, ws, sw in CONFIGS:
        events = get_events(name)
        spec = spec_for(events, ws, sw)
        off = offline_kernel_run(events, spec, graph_max_core)
        stream = streaming_kernel_run(events, spec, graph_max_core)
        pm = postmortem_kernel_run(
            events, spec, graph_max_core, 6, view_kernel=max_core
        )
        assert off.values == stream.values == pm.values
        ratios.append(stream.total_time / pm.total_time)
        rows.append(
            [
                name,
                spec.n_windows,
                max(off.values),
                round(off.total_time, 3),
                round(stream.total_time, 3),
                round(pm.total_time, 3),
                round(stream.total_time / pm.total_time, 2),
            ]
        )
    text = format_table(
        [
            "dataset",
            "#win",
            "max degeneracy",
            "offline(s)",
            "streaming(s)",
            "postmortem(s)",
            "pm/stream",
        ],
        rows,
        title=(
            "Extension: k-core degeneracy per window under the three "
            "execution models (identical results asserted)"
        ),
    )
    return text, ratios


def test_extension_kcore(benchmark):
    text, ratios = benchmark.pedantic(run_extension, rounds=1, iterations=1)
    emit("extension_kcore", text)
    # the postmortem representation advantage carries over to k-core
    assert all(r > 1.0 for r in ratios)
