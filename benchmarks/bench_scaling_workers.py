"""Strong-scaling study — simulated speedup vs worker count, plus the
offline model's *real* executor sweep.

The paper reports one machine size (48 cores).  The simulated half sweeps
the worker count for the suggested configuration (nested, auto,
granularity 4, SpMM-16) and the two single-level strategies, reporting
parallel efficiency — where each level's scaling saturates and why
(window-level: window count; application-level: per-region parallelism
and synchronization; nested: the best of both).

The real half exercises the unified runtime: the offline model's window
loop under every executor (serial / thread / process / shared), asserting
bitwise-identical vectors and recording machine-independent dispatch
metrics to ``benchmarks/output/scaling_workers.json`` for
``check_regression.py`` (baseline: ``BENCH_scaling_workers.json``).

Run:  pytest benchmarks/bench_scaling_workers.py --benchmark-only -s
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np

from benchmarks._common import (
    OUTPUT_DIR,
    cost_model,
    emit,
    get_events,
    postmortem_stats,
    spec_with_n_windows,
)
from repro.pagerank import PagerankConfig
from repro.parallel import AUTO, MachineSpec
from repro.parallel.levels import estimate_makespan
from repro.reporting import format_series
from repro.runtime import DriverContext, make_driver
from repro.utils.timer import Timer

WORKERS = [1, 2, 4, 8, 16, 24, 48, 96]

#: worker count for the real offline executor sweep (CI-friendly)
OFFLINE_WORKERS = 4
OFFLINE_EXECUTORS = ("serial", "thread", "process", "shared")


def run_scaling():
    events = get_events("wiki-talk")
    spec = spec_with_n_windows(events, 90.0, 256)
    stats = postmortem_stats("wiki-talk", spec, 6)
    stats = dataclasses.replace(stats, build_seconds=0.0)
    model = cost_model()

    series = {}
    speedups = {}
    for level in ("window", "application", "nested"):
        base = estimate_makespan(
            stats, MachineSpec(1), model, level, AUTO, 4, "spmm", 16
        )
        ys, eff = [], []
        for p in WORKERS:
            t = estimate_makespan(
                stats, MachineSpec(p), model, level, AUTO, 4, "spmm", 16
            )
            ys.append(base / t)
            eff.append(base / t / p)
        series[f"{level} speedup"] = ys
        series[f"{level} efficiency"] = eff
        speedups[level] = ys
    text = format_series(
        "workers",
        WORKERS,
        series,
        title=(
            "Strong scaling (simulated): suggested configuration, "
            f"wiki-talk, {spec.n_windows} windows"
        ),
    )
    return text, speedups


def test_scaling_workers(benchmark):
    text, speedups = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    emit("scaling_workers", text)

    for level, ys in speedups.items():
        # monotone non-decreasing speedups
        for a, b in zip(ys, ys[1:]):
            assert b >= a * 0.99, level
        # and sublinear (efficiency <= 1)
        for p, s in zip(WORKERS, ys):
            assert s <= p * 1.01, (level, p)
    # real speedups at the paper's 48 workers: window-level scales best on
    # this many-window instance; nested pays per-region overheads on the
    # tiny scaled windows but still gains
    assert speedups["window"][WORKERS.index(48)] > 8.0
    assert speedups["nested"][WORKERS.index(48)] > 3.0


def run_offline_executor_sweep():
    events = get_events("stackoverflow")
    spec = spec_with_n_windows(events, 90.0, 48)
    cfg = PagerankConfig(tolerance=1e-10, max_iterations=200)

    seconds = {}
    matrices = {}
    arena_stats = None
    for executor in OFFLINE_EXECUTORS:
        ctx = DriverContext(executor=executor, n_workers=OFFLINE_WORKERS)
        driver = make_driver("offline", events, spec, cfg, context=ctx)
        with Timer() as t:
            run = driver.run(store_values=True)
        seconds[executor] = t.elapsed
        matrices[executor] = run.values_matrix()
        if executor == "shared":
            arena_stats = run.metadata["shared_arena"]

    payload = {
        "profile": {
            "name": "stackoverflow",
            "events": int(events.n_events),
            "vertices": int(events.n_vertices),
            "windows": int(spec.n_windows),
            "workers": OFFLINE_WORKERS,
        },
        "seconds": {k: round(v, 4) for k, v in seconds.items()},
        "offline": {
            "shared_payload_bytes": int(arena_stats["payload_bytes"]),
            "shared_arena_bytes": int(arena_stats["arena_bytes"]),
            "shared_n_tasks": int(arena_stats["n_tasks"]),
        },
    }
    for executor in OFFLINE_EXECUTORS[1:]:
        payload[f"{executor}_match_exact"] = bool(
            np.array_equal(matrices[executor], matrices["serial"])
        )
    return payload


def test_offline_executor_sweep(benchmark):
    payload = benchmark.pedantic(
        run_offline_executor_sweep, rounds=1, iterations=1
    )
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "scaling_workers.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(json.dumps(payload, indent=2))

    # every parallel executor must reproduce serial bit for bit
    assert payload["thread_match_exact"]
    assert payload["process_match_exact"]
    assert payload["shared_match_exact"]
    # shared dispatch ships handles, not arrays: payload stays small
    assert payload["offline"]["shared_payload_bytes"] < 256 * 1024
