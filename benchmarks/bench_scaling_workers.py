"""Strong-scaling study — simulated speedup vs worker count.

The paper reports one machine size (48 cores).  This study sweeps the
simulated worker count for the suggested configuration (nested, auto,
granularity 4, SpMM-16) and the two single-level strategies, reporting
parallel efficiency — where each level's scaling saturates and why
(window-level: window count; application-level: per-region parallelism
and synchronization; nested: the best of both).

Run:  pytest benchmarks/bench_scaling_workers.py --benchmark-only -s
"""

from __future__ import annotations

import dataclasses

from benchmarks._common import (
    cost_model,
    emit,
    get_events,
    postmortem_stats,
    spec_with_n_windows,
)
from repro.parallel import AUTO, MachineSpec
from repro.parallel.levels import estimate_makespan
from repro.reporting import format_series

WORKERS = [1, 2, 4, 8, 16, 24, 48, 96]


def run_scaling():
    events = get_events("wiki-talk")
    spec = spec_with_n_windows(events, 90.0, 256)
    stats = postmortem_stats("wiki-talk", spec, 6)
    stats = dataclasses.replace(stats, build_seconds=0.0)
    model = cost_model()

    series = {}
    speedups = {}
    for level in ("window", "application", "nested"):
        base = estimate_makespan(
            stats, MachineSpec(1), model, level, AUTO, 4, "spmm", 16
        )
        ys, eff = [], []
        for p in WORKERS:
            t = estimate_makespan(
                stats, MachineSpec(p), model, level, AUTO, 4, "spmm", 16
            )
            ys.append(base / t)
            eff.append(base / t / p)
        series[f"{level} speedup"] = ys
        series[f"{level} efficiency"] = eff
        speedups[level] = ys
    text = format_series(
        "workers",
        WORKERS,
        series,
        title=(
            "Strong scaling (simulated): suggested configuration, "
            f"wiki-talk, {spec.n_windows} windows"
        ),
    )
    return text, speedups


def test_scaling_workers(benchmark):
    text, speedups = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    emit("scaling_workers", text)

    for level, ys in speedups.items():
        # monotone non-decreasing speedups
        for a, b in zip(ys, ys[1:]):
            assert b >= a * 0.99, level
        # and sublinear (efficiency <= 1)
        for p, s in zip(WORKERS, ys):
            assert s <= p * 1.01, (level, p)
    # real speedups at the paper's 48 workers: window-level scales best on
    # this many-window instance; nested pays per-region overheads on the
    # tiny scaled windows but still gains
    assert speedups["window"][WORKERS.index(48)] > 8.0
    assert speedups["nested"][WORKERS.index(48)] > 3.0
