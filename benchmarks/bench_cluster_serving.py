"""Sharded serving federation under zipfian load: the cluster's SLOs.

Four claims, asserted on a 48-window, 30k-vertex synthetic store served
by a 3-shard cluster behind the asyncio front door:

* the full query surface answered through the cluster is byte-identical
  to a single in-process :class:`QueryEngine` (scatter/gather and
  cross-shard movers change topology, not answers);
* under zipfian load, cached ``top_k`` p99 through the cluster stays
  within 10x the single-process server's p50 — federation buys capacity
  without wrecking the fast path;
* overload sheds (HTTP 429) instead of queueing without bound — the
  admission-controlled front door keeps latency flat by refusing work;
* teardown is leak-free: every shared-memory arena segment the cluster
  published is unlinked on shutdown.

The guarded metric (``p99_over_single_p50``) is a same-machine ratio of
two back-to-back runs, so it is stable where absolute wall-clock is not.
Results are printed, persisted as text, and emitted as JSON
(``benchmarks/output/cluster_serving.json``) for trend tracking;
``check_regression.py cluster_serving`` diffs against the committed
``BENCH_cluster_serving.json``.

Run:  pytest benchmarks/bench_cluster_serving.py -s
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from benchmarks._common import OUTPUT_DIR, emit
from repro.reporting import format_table
from repro.service import QueryEngine, QueryServer, RankStoreWriter
from repro.service.cluster import (
    ClusterFrontend,
    ShardCluster,
    generate_queries,
    run_load,
)

N_VERTICES = 30_000
N_WINDOWS = 48
N_SHARDS = 3
N_QUERIES = 600
N_WARMUP = 300
CONCURRENCY = 8
ZIPF_S = 1.1
#: acceptance bound — cluster cached top-k p99 vs single-process p50
P99_BOUND = 10.0

SHM = Path("/dev/shm")


def _arena_segments():
    if not SHM.is_dir():
        return set()
    return {p.name for p in SHM.glob("repro_arena*")}


def _normalize(obj):
    return json.loads(json.dumps(obj))


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cluster") / "bench.rankstore"
    rng = np.random.default_rng(42)
    with RankStoreWriter(path, n_windows=N_WINDOWS,
                         n_vertices=N_VERTICES) as w:
        for i in range(N_WINDOWS):
            row = rng.random(N_VERTICES, dtype=np.float32)
            w.write_window(i, row / row.sum())
    return path


def _zipf_load(url: str, seed: int, n: int, concurrency: int = CONCURRENCY):
    queries = generate_queries(
        n, n_windows=N_WINDOWS, n_vertices=N_VERTICES,
        zipf_s=ZIPF_S, seed=seed,
    )
    return run_load(url, queries, concurrency=concurrency)


def test_cluster_serving(store_path):
    before = _arena_segments()

    # -- single-process baseline ----------------------------------------
    single = QueryServer(store_path, port=0, workers=4).start()
    try:
        _zipf_load(single.url, seed=11, n=N_WARMUP)   # warm the caches
        single_report = _zipf_load(single.url, seed=12, n=N_QUERIES)
    finally:
        single.shutdown()
    assert single_report.errors == 0
    single_p50 = single_report.percentile("top_k", 50)

    # -- 3-shard cluster under the same zipfian mix ---------------------
    cluster = ShardCluster(store_path, n_shards=N_SHARDS, engine_workers=2)
    engine = QueryEngine(store_path)
    try:
        frontend = ClusterFrontend(cluster, port=0).start()
        try:
            _zipf_load(frontend.url, seed=11, n=N_WARMUP)
            cluster_report = _zipf_load(frontend.url, seed=12, n=N_QUERIES)
        finally:
            frontend.shutdown()
        assert cluster_report.errors == 0
        assert cluster_report.degraded == 0
        cluster_p99 = cluster_report.percentile("top_k", 99)
        ratio = cluster_p99 / single_p50

        # -- parity: the federation changes topology, not answers -------
        sample = generate_queries(
            150, n_windows=N_WINDOWS, n_vertices=N_VERTICES,
            zipf_s=ZIPF_S, seed=5,
        )
        parity = _normalize(cluster.batch(sample)) == \
            _normalize(engine.batch(sample))

        # -- overload: a tiny front door sheds instead of queueing ------
        choke = ClusterFrontend(cluster, port=0, max_inflight=2).start()
        try:
            overload = _zipf_load(choke.url, seed=13, n=400, concurrency=24)
        finally:
            choke.shutdown()
        overload_sheds = overload.shed > 0 and overload.errors == 0
    finally:
        engine.close()
        cluster.shutdown()

    no_shm_leak = _arena_segments() == before

    payload = {
        "store": {"windows": N_WINDOWS, "vertices": N_VERTICES,
                  "shards": N_SHARDS},
        "single": single_report.as_dict(),
        "cluster": cluster_report.as_dict(),
        "overload": overload.as_dict(),
        "slo": {
            "single_topk_p50_ms": round(single_p50 * 1e3, 3),
            "cluster_topk_p99_ms": round(cluster_p99 * 1e3, 3),
            "p99_over_single_p50": round(ratio, 3),
            "bound": P99_BOUND,
        },
        "parity_all_ops": parity,
        "overload_sheds": overload_sheds,
        "no_shm_leak": no_shm_leak,
        "topk_p99_within_bound": ratio < P99_BOUND,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "cluster_serving.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    def row(label, report):
        return [
            label,
            f"{report.qps:,.0f}",
            f"{report.percentile('top_k', 50) * 1e3:.3f}",
            f"{report.percentile('top_k', 99) * 1e3:.3f}",
            f"{report.shed}",
        ]

    text = format_table(
        ["tier", "qps", "top-k p50 (ms)", "top-k p99 (ms)", "shed"],
        [
            row("single server", single_report),
            row(f"{N_SHARDS}-shard cluster", cluster_report),
            row("choked frontend", overload),
        ],
        title=(
            f"zipfian serving on {N_WINDOWS} windows x "
            f"{N_VERTICES:,} vertices ({N_QUERIES} queries, "
            f"concurrency {CONCURRENCY})"
        ),
    )
    text += (
        f"\n\ncluster top-k p99 / single p50: {ratio:.2f}x "
        f"(bound {P99_BOUND:.0f}x)"
        f"\nparity on all ops: {parity}; overload sheds: {overload_sheds}; "
        f"leak-free teardown: {no_shm_leak}"
    )
    emit("cluster_serving", text)

    # the acceptance claims
    assert parity
    assert overload_sheds
    assert no_shm_leak
    assert ratio < P99_BOUND
