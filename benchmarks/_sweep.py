"""Shared sweep machinery for Figures 7, 9 and 10.

Each figure sweeps granularity x partitioner x (parallelization level,
kernel) on wiki-talk at a fixed window count and reports *speedup over the
measured streaming baseline*, where the postmortem side is the calibrated
simulated 48-core machine replaying the real measured per-window work
(DESIGN.md §2's substitution for the paper's TBB runs).
"""

from __future__ import annotations

from typing import Dict, List

from benchmarks._common import (
    PAPER_CORES,
    cost_model,
    emit,
    get_events,
    postmortem_stats,
    spec_with_n_windows,
    streaming_seconds,
)
from repro.parallel import AUTO, SIMPLE, STATIC, MachineSpec
from repro.parallel.levels import estimate_makespan
from repro.reporting import format_series

GRANULARITIES = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048]
PARTITIONERS = [AUTO, SIMPLE, STATIC]
CURVES = [
    ("Nested(SpMM)", "nested", "spmm"),
    ("Nested(SpMV)", "nested", "spmv"),
    ("PR Level(SpMM)", "application", "spmm"),
    ("PR Level(SpMV)", "application", "spmv"),
    ("Window Level(SpMM)", "window", "spmm"),
    ("Window Level(SpMV)", "window", "spmv"),
]
VECTOR_LENGTH = 16


def run_sweep(figure: str, delta_days: float, n_windows: int,
              n_multiwindows: int = 6):
    """Run one figure's full sweep; returns (rendered text, raw curves)."""
    import dataclasses

    events = get_events("wiki-talk")
    spec = spec_with_n_windows(events, delta_days, n_windows)
    stats = postmortem_stats("wiki-talk", spec, n_multiwindows)
    # Figures 7-10 sweep *kernel execution* parameters; the one-time
    # representation build is excluded (it would otherwise flatten the
    # few-window sweeps into a constant). Figures 5/11/12 include it.
    stats = dataclasses.replace(stats, build_seconds=0.0)
    t_stream = streaming_seconds("wiki-talk", spec)
    model = cost_model()
    machine = MachineSpec(PAPER_CORES)

    blocks: List[str] = []
    all_curves: Dict[str, Dict[str, List[float]]] = {}
    for part in PARTITIONERS:
        series: Dict[str, List[float]] = {}
        for label, level, kernel in CURVES:
            ys = []
            for g in GRANULARITIES:
                t_pm = estimate_makespan(
                    stats, machine, model, level, part, g, kernel,
                    VECTOR_LENGTH,
                )
                ys.append(t_stream / t_pm)
            series[label] = ys
        all_curves[part.name] = series
        blocks.append(
            format_series(
                "granularity",
                GRANULARITIES,
                series,
                title=(
                    f"{figure} — TBB::{part.name}_partitioner  "
                    f"(wiki-talk, delta={delta_days:.0f}d, "
                    f"windows={spec.n_windows}, speedup over streaming, "
                    f"simulated {PAPER_CORES} cores)"
                ),
                precision=1,
            )
        )
    return "\n\n".join(blocks), all_curves, spec
