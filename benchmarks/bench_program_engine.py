"""Vertex-program engine vs the legacy kernel-driver path.

The engine refactor rehomed every analytic onto the warm-start chain
solver (:func:`repro.programs.engine.solve_program_chain`) — the same
pooled-workspace, partial-initialization machinery the PageRank drivers
use.  This bench answers two questions for the non-PageRank programs:

* **Is it the same answer?**  ``--program kcore`` through the postmortem
  driver must match the generic kernel-driver path (``core_numbers`` per
  window) *exactly* — both peel the identical undirected simple window
  graph.  ``--program katz`` uses the backend propagation contract where
  the legacy ``katz_window`` kernel uses a segment-sum reduce; the two
  summation orders round differently, so the gate is a tight value
  tolerance on the normalized vectors, not bitwise identity.
* **What does the engine cost?**  Back-to-back same-machine wall-clock
  ratio of the engine path over the kernel-driver path, per analytic —
  pooled workspaces and warm-started Katz chains should keep the engine
  at or below the legacy loop, and the ratio is guarded so engine
  overhead cannot silently grow.

Results are printed, persisted as text, and emitted as JSON
(``benchmarks/output/program_engine.json``); the committed baseline is
``benchmarks/BENCH_program_engine.json``.

Run:  pytest benchmarks/bench_program_engine.py -s
"""

from __future__ import annotations

import json
import time

import numpy as np

from benchmarks._common import BENCH_CONFIG, OUTPUT_DIR, emit, get_events, spec_for
from repro.kernels import core_numbers, katz_window
from repro.kernels.katz import KatzConfig
from repro.models.postmortem import PostmortemDriver, PostmortemOptions
from repro.programs.adapter import TemporalKernelDriver
from repro.programs.katz import KatzProgram
from repro.reporting import format_table

PROFILE = "wiki-talk"
DELTA_DAYS = 90.0
SW_SECONDS = 259_200
N_MULTIWINDOWS = 6

#: one Katz parameterization for both paths; tight tolerance so the two
#: propagation orders converge to the same fixed point
KATZ_CFG = KatzConfig(tolerance=1e-10, max_iterations=300)

#: allowed value divergence between the backend-propagation and
#: segment-sum Katz fixed points (normalized vectors)
KATZ_ATOL = 5e-7


def katz_values(view):
    return katz_window(view, KATZ_CFG).values


def _engine_run(events, spec, program):
    driver = PostmortemDriver(
        events,
        spec,
        BENCH_CONFIG,
        PostmortemOptions(n_multiwindows=N_MULTIWINDOWS),
        program=program,
    )
    t0 = time.perf_counter()
    result = driver.run()
    elapsed = time.perf_counter() - t0
    return [w.values for w in result.windows], elapsed


def _kernel_run(events, spec, kernel):
    driver = TemporalKernelDriver(
        events, spec, N_MULTIWINDOWS, to_global=True
    )
    t0 = time.perf_counter()
    result = driver.run(kernel)
    elapsed = time.perf_counter() - t0
    return [w.value for w in result.windows], elapsed


def test_program_engine():
    events = get_events(PROFILE)
    spec = spec_for(events, DELTA_DAYS, SW_SECONDS)

    # -- k-core: identical peeling on both paths → exact match -----------
    eng_kcore, eng_kcore_s = _engine_run(events, spec, "kcore")
    ker_kcore, ker_kcore_s = _kernel_run(events, spec, core_numbers)
    kcore_exact = all(
        np.array_equal(a, b) for a, b in zip(eng_kcore, ker_kcore)
    )

    # -- Katz: backend propagation vs segment-sum → tight tolerance ------
    program = KatzProgram(config=KATZ_CFG, routing=BENCH_CONFIG)
    eng_katz, eng_katz_s = _engine_run(events, spec, program)
    ker_katz, ker_katz_s = _kernel_run(events, spec, katz_values)
    katz_diff = max(
        float(np.abs(a - b).max()) for a, b in zip(eng_katz, ker_katz)
    )
    katz_close = katz_diff <= KATZ_ATOL

    payload = {
        "profile": PROFILE,
        "n_windows": spec.n_windows,
        "kcore": {
            "engine_s": round(eng_kcore_s, 4),
            "kernel_s": round(ker_kcore_s, 4),
            "engine_over_kernel": round(eng_kcore_s / ker_kcore_s, 4),
            "match_exact": bool(kcore_exact),
        },
        "katz": {
            "engine_s": round(eng_katz_s, 4),
            "kernel_s": round(ker_katz_s, 4),
            "engine_over_kernel": round(eng_katz_s / ker_katz_s, 4),
            "max_abs_diff": katz_diff,
            "match_close": bool(katz_close),
        },
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "program_engine.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [
        [
            "kcore",
            round(eng_kcore_s, 3),
            round(ker_kcore_s, 3),
            round(eng_kcore_s / ker_kcore_s, 2),
            "exact" if kcore_exact else "DIVERGED",
        ],
        [
            "katz",
            round(eng_katz_s, 3),
            round(ker_katz_s, 3),
            round(eng_katz_s / ker_katz_s, 2),
            f"<= {katz_diff:.2e}" if katz_close else f"DIVERGED {katz_diff:.2e}",
        ],
    ]
    text = format_table(
        ["program", "engine(s)", "kernel path(s)", "engine/kernel", "values"],
        rows,
        title=(
            f"program engine vs legacy kernel driver on {PROFILE} "
            f"({spec.n_windows} windows, Y={N_MULTIWINDOWS})"
        ),
    )
    emit("program_engine", text)

    assert kcore_exact
    assert katz_close, katz_diff
