"""Figure 4 — temporal edge distribution per dataset.

For each profile, prints the binned event counts over time plus the shape
summary (peak/mean, gini, trend) and the shape class that the paper's
narrative assigns: Enron = spike, Epinions = burst, HepTh = irregular,
YouTube = bursty-steady, wiki-talk/stackoverflow/askubuntu = growth.

Run:  pytest benchmarks/bench_fig4_edge_distribution.py --benchmark-only -s
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, get_events
from repro.analysis import distribution_summary, edge_distribution
from repro.datasets import PROFILES
from repro.reporting import format_table

EXPECTED_SHAPE = {
    "ia-enron-email": ("spike",),
    "epinions-user-ratings": ("spike", "bursty"),
    "ca-cit-HepTh": ("bursty", "growth", "steady"),
    "youtube-growth": ("steady", "bursty"),
    "wiki-talk": ("growth",),
    "stackoverflow": ("growth",),
    "askubuntu": ("growth",),
}


def sparkline(counts: np.ndarray, width: int = 48) -> str:
    blocks = " .:-=+*#%@"
    idx = np.linspace(0, counts.size - 1, width).astype(int)
    c = counts[idx].astype(float)
    scale = c.max() or 1.0
    return "".join(blocks[int(v / scale * (len(blocks) - 1))] for v in c)


def render_fig4() -> str:
    rows = []
    for name in PROFILES:
        events = get_events(name)
        _, counts = edge_distribution(events, n_bins=120)
        s = distribution_summary(events, n_bins=60)
        rows.append(
            [
                name,
                s.shape_class,
                round(s.peak_to_mean, 1),
                round(s.gini, 2),
                round(s.trend, 2),
                sparkline(counts),
            ]
        )
    return format_table(
        ["dataset", "class", "peak/mean", "gini", "trend", "edges over time"],
        rows,
        title="Figure 4: temporal edge distribution over the time period",
    )


def test_fig4_distributions(benchmark):
    text = benchmark.pedantic(render_fig4, rounds=1, iterations=1)
    emit("fig4_edge_distribution", text)


def test_fig4_shapes_match_paper():
    """Each synthetic profile must land in its paper-assigned shape class."""
    for name, allowed in EXPECTED_SHAPE.items():
        s = distribution_summary(get_events(name))
        assert s.shape_class in allowed, (name, s)


def test_edge_distribution_kernel_speed(benchmark):
    events = get_events("stackoverflow")
    starts, counts = benchmark(edge_distribution, events, 120)
    assert counts.sum() == len(events)
