"""Ablation — solver tolerance vs ranking quality and cost.

Practical guidance the paper leaves implicit: how tight does the PageRank
tolerance need to be when the downstream consumer only reads *rankings*?
Sweeps the tolerance, comparing each run's per-window rankings against a
tight-tolerance reference (Spearman rho, top-10 overlap) and the measured
serial cost.

Expected shape: rank quality saturates orders of magnitude before
numerical convergence — 1e-6 is typically indistinguishable from 1e-12
for top-k consumers, at a fraction of the iterations.

Run:  pytest benchmarks/bench_ablation_tolerance.py --benchmark-only -s
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, get_events, spec_for
from repro.analysis import spearman_rank_correlation, topk_overlap
from repro.models import PostmortemDriver, PostmortemOptions
from repro.pagerank import PagerankConfig
from repro.reporting import format_table
from repro.utils.timer import Timer

TOLERANCES = [1e-2, 1e-4, 1e-6, 1e-8, 1e-10]
REFERENCE_TOL = 1e-12


def run_ablation():
    events = get_events("wiki-talk")
    spec = spec_for(events, 90.0, 259_200)
    opts = PostmortemOptions(n_multiwindows=6)

    ref = PostmortemDriver(
        events, spec,
        PagerankConfig(tolerance=REFERENCE_TOL, max_iterations=300),
        opts,
    ).run()
    ref_vectors = [w.values for w in ref.windows]

    rows = []
    rhos, overlaps = [], []
    for tol in TOLERANCES:
        cfg = PagerankConfig(tolerance=tol, max_iterations=300)
        with Timer() as t:
            run = PostmortemDriver(events, spec, cfg, opts).run()
        rho_vals, ov_vals = [], []
        for w, rv in zip(run.windows, ref_vectors):
            active = rv > 0
            if active.sum() < 10:
                continue
            rho_vals.append(
                spearman_rank_correlation(w.values[active], rv[active])
            )
            ov_vals.append(topk_overlap(w.values, rv, k=10))
        rho = float(np.mean(rho_vals))
        ov = float(np.mean(ov_vals))
        rhos.append(rho)
        overlaps.append(ov)
        rows.append(
            [
                f"{tol:g}",
                run.total_iterations,
                round(t.elapsed, 3),
                round(rho, 4),
                round(ov, 3),
            ]
        )
    text = format_table(
        [
            "tolerance",
            "total iterations",
            "time (s)",
            "mean Spearman vs 1e-12",
            "mean top-10 overlap",
        ],
        rows,
        title=(
            "Ablation: solver tolerance vs ranking quality "
            f"(wiki-talk, {spec.n_windows} windows)"
        ),
    )
    return text, rhos, overlaps


def test_ablation_tolerance(benchmark):
    text, rhos, overlaps = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    emit("ablation_tolerance", text)

    # rank quality is monotone-ish in tolerance and saturates early
    assert rhos[-1] > 0.9999
    assert overlaps[TOLERANCES.index(1e-6)] > 0.95
    assert rhos[TOLERANCES.index(1e-6)] > 0.99
