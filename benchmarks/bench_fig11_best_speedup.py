"""Figure 11 — best postmortem speedup over streaming, per dataset, over
the full (sliding offset x window size) parameter grid of Table 1.

Each heatmap cell: measured streaming wall-clock divided by the best
simulated-48-core postmortem makespan over a small configuration search
(levels x kernels x granularities, auto partitioner), representation build
included.  The paper's cells range 50-886; the expected shape is
large speedups everywhere, generally growing as windows get smaller/more
numerous on the growth datasets.

Sliding offsets are scaled up by an integer factor when needed to cap the
window count (printed per dataset); that conservatively *lowers* speedups
by shrinking the across-window parallelism pool.

Run:  pytest benchmarks/bench_fig11_best_speedup.py --benchmark-only -s
"""

from __future__ import annotations

import dataclasses

import numpy as np

from benchmarks._common import (
    MAX_WINDOWS,
    PAPER_CORES,
    cost_model,
    emit,
    get_events,
    postmortem_stats,
    spec_for,
    streaming_seconds,
)
from repro.datasets import PROFILES
from repro.parallel import AUTO, MachineSpec
from repro.parallel.levels import estimate_makespan
from repro.reporting import format_heatmap

SEARCH_LEVELS = ("window", "nested")
SEARCH_GRANULARITIES = (1, 4)
SEARCH_KERNELS = ("spmv", "spmm")

# trim the largest grids to keep the harness under a few minutes
GRID_LIMIT = 9


def best_postmortem_seconds(name, spec) -> float:
    stats = postmortem_stats(name, spec, n_multiwindows=6)
    model = cost_model()
    machine = MachineSpec(PAPER_CORES)
    best = float("inf")
    for level in SEARCH_LEVELS:
        for g in SEARCH_GRANULARITIES:
            for kernel in SEARCH_KERNELS:
                t = estimate_makespan(
                    stats, machine, model, level, AUTO, g, kernel, 16
                )
                best = min(best, t)
    return best


def run_fig11():
    blocks = []
    all_grids = {}
    for name, profile in PROFILES.items():
        events = get_events(name)
        sws = list(profile.sliding_offsets)
        wss = list(profile.window_sizes_days)
        # subsample window sizes (keeping the small-to-large spread)
        # rather than truncating the tail
        while len(sws) * len(wss) > GRID_LIMIT and len(wss) > 1:
            wss = wss[::2]
        grid = np.zeros((len(wss), len(sws)))
        eff_sw = np.zeros((len(wss), len(sws)), dtype=np.int64)
        for i, ws in enumerate(wss):
            for j, sw in enumerate(sws):
                spec = spec_for(events, ws, sw)
                eff_sw[i, j] = spec.sw
                t_stream = streaming_seconds(name, spec)
                t_pm = best_postmortem_seconds(name, spec)
                grid[i, j] = t_stream / t_pm
        all_grids[name] = grid
        blocks.append(
            format_heatmap(
                grid,
                [f"{w:.0f}" for w in wss],
                [str(s) for s in sws],
                row_title="window(d)",
                col_title="offset(s)",
                title=(
                    f"Figure 11 ({name}): best postmortem speedup over "
                    f"streaming (simulated {PAPER_CORES} cores; effective "
                    f"offsets {sorted(set(eff_sw.ravel().tolist()))})"
                ),
            )
        )
    return "\n\n".join(blocks), all_grids


def test_fig11_best_speedup(benchmark):
    text, grids = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    emit("fig11_best_speedup", text)

    mins = {name: g.min() for name, g in grids.items()}
    maxs = {name: g.max() for name, g in grids.items()}
    # headline claim: postmortem is massively faster than streaming on
    # every dataset and configuration (paper: 50x-886x)
    for name, lo in mins.items():
        assert lo > 5.0, (name, lo)
    assert max(maxs.values()) > 50.0
