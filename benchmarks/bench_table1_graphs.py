"""Table 1 — graphs and parameters.

Regenerates the dataset/parameter inventory: for each of the 7 profiles,
the synthetic instance size, its paper-scale original, the scale factor,
and the (sliding offset, window size) grids the evaluation sweeps.

Run:  pytest benchmarks/bench_table1_graphs.py --benchmark-only -s
"""

from __future__ import annotations

from benchmarks._common import BENCH_SCALE, emit, get_events
from repro.datasets import PROFILES, get_profile
from repro.reporting import format_table


def render_table1() -> str:
    rows = []
    for name, profile in PROFILES.items():
        events = get_events(name)
        sw = ", ".join(
            f"{s // 3600}h" if s < 86_400 else f"{s // 86_400}d"
            for s in profile.sliding_offsets
        )
        ws = ", ".join(f"{int(w)}d" for w in profile.window_sizes_days)
        rows.append(
            [
                name,
                f"{profile.paper_events:,}",
                f"{len(events):,}",
                f"{profile.scale_factor / BENCH_SCALE:,.0f}x",
                events.n_vertices,
                f"{events.span // 86_400}d",
                sw,
                ws,
            ]
        )
    return format_table(
        [
            "Name",
            "Events (paper)",
            "Events (here)",
            "scale",
            "|V|",
            "span",
            "Sliding Offset",
            "Window Size",
        ],
        rows,
        title="Table 1: Graphs and Parameters (synthetic, scaled)",
    )


def test_table1_inventory(benchmark):
    text = benchmark.pedantic(render_table1, rounds=1, iterations=1)
    emit("table1_graphs", text)
    assert text.count("\n") >= 9  # 7 datasets + header


def test_dataset_generation_speed(benchmark):
    """How long one profile takes to generate (the offline model would pay
    per-window slices of this stream)."""
    profile = get_profile("wiki-talk")
    events = benchmark(lambda: profile.generate(scale=BENCH_SCALE))
    assert len(events) > 0
